"""Integration tests for scenario assembly and the experiment runner."""

import pytest

from repro.experiments.attackers import make_cityhunter, make_karma, make_mana
from repro.experiments.calibration import venue_profile
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import ScenarioConfig, build_scenario


def _quick(city, wigle, factory, venue="canteen", duration=300.0, seed=5, **kw):
    return run_experiment(
        city, wigle, factory, venue_profile(venue), duration, seed=seed, **kw
    )


class TestRunnerBasics:
    def test_clients_observed(self, city, wigle):
        result = _quick(city, wigle, make_karma())
        assert result.summary.total_clients > 30
        assert result.people_spawned >= result.summary.total_clients

    def test_deterministic_given_seed(self, city, wigle):
        a = _quick(city, wigle, make_mana(), seed=9)
        b = _quick(city, wigle, make_mana(), seed=9)
        assert a.summary == b.summary

    def test_seed_changes_outcome(self, city, wigle):
        a = _quick(city, wigle, make_mana(), seed=9)
        b = _quick(city, wigle, make_mana(), seed=10)
        assert a.summary != b.summary

    def test_result_properties(self, city, wigle):
        r = _quick(city, wigle, make_karma())
        assert r.h == r.summary.hit_rate
        assert r.h_b == r.summary.broadcast_hit_rate

    def test_direct_and_broadcast_clients_both_present(self, city, wigle):
        r = _quick(city, wigle, make_karma(), duration=600.0)
        assert r.summary.direct_clients > 0
        assert r.summary.broadcast_clients > r.summary.direct_clients


class TestFidelityEquivalence:
    def test_frame_and_burst_agree(self, city, wigle):
        """The burst fast path must reproduce frame-level results.

        With no direct probers the reception arithmetic is identical, so
        summaries must match exactly.
        """
        from repro.population.pnl import PnlModel

        model = PnlModel(p_unsafe=0.0)
        hunter = lambda: make_cityhunter(wigle, city.heatmap)
        frame = _quick(
            city, wigle, hunter(), duration=600.0, fidelity="frame", pnl_model=model
        )
        burst = _quick(
            city, wigle, hunter(), duration=600.0, fidelity="burst", pnl_model=model
        )
        assert frame.summary == burst.summary

    def test_mixed_traffic_agreement_is_close(self, city, wigle):
        """With direct probers the window bookkeeping differs slightly
        between modes; hit rates must still agree within a point."""
        hunter = lambda: make_cityhunter(wigle, city.heatmap)
        frame = _quick(city, wigle, hunter(), duration=900.0, fidelity="frame")
        burst = _quick(city, wigle, hunter(), duration=900.0, fidelity="burst")
        assert frame.summary.total_clients == burst.summary.total_clients
        assert abs(frame.h_b - burst.h_b) < 0.02


class TestScenarioConfig:
    def test_unknown_mobility_rejected(self, city, wigle):
        config = ScenarioConfig(
            venue_name="University Canteen",
            mobility="teleport",
            people_per_min=10.0,
            duration=60.0,
        )
        build = build_scenario(city, wigle, config, make_karma())
        with pytest.raises(ValueError):
            build.sim.run(60.0)

    def test_unknown_venue_rejected(self, city, wigle):
        config = ScenarioConfig(
            venue_name="Narnia", mobility="static",
            people_per_min=10.0, duration=60.0,
        )
        with pytest.raises(KeyError):
            build_scenario(city, wigle, config, make_karma())

    def test_group_members_share_mobility(self, city, wigle):
        config = ScenarioConfig(
            venue_name="University Canteen",
            mobility="static",
            people_per_min=30.0,
            duration=120.0,
            group_probs=(0.0, 0.0, 0.0, 1.0),  # everyone in groups of 4
            seed=3,
        )
        build = build_scenario(city, wigle, config, make_karma())
        build.sim.run(150.0)
        assert build.phones
        by_group = {}
        for phone in build.phones:
            gid = phone.person.group_id
            by_group.setdefault(gid, set()).add(id(phone.mobility))
        for gid, mobilities in by_group.items():
            if gid >= 0:
                assert len(mobilities) == 1  # literally walking together

    def test_camped_clients_absent_without_venue_ap(self, city, wigle):
        """People holding the venue SSID are mostly silent (camped)."""
        from repro.population.pnl import PnlModel

        venue = city.venue("University Canteen")
        config = ScenarioConfig(
            venue_name=venue.name,
            mobility="static",
            people_per_min=40.0,
            duration=400.0,
            camped_share=1.0,
            seed=3,
        )
        build = build_scenario(city, wigle, config, make_karma())
        build.sim.run(430.0)
        for phone in build.phones:
            open_venue = any(
                s in phone.person.pnl and phone.person.pnl[s].auto_joinable
                for s in venue.wifi_ssids
            )
            assert not open_venue  # all holders were camped away

    def test_include_camped_spawns_venue_ap_and_silent_clients(self, city, wigle):
        config = ScenarioConfig(
            venue_name="University Canteen",
            mobility="static",
            people_per_min=40.0,
            duration=400.0,
            camped_share=1.0,
            include_camped=True,
            seed=3,
        )
        build = build_scenario(city, wigle, config, make_karma())
        build.sim.run(430.0)
        assert build.venue_ap is not None
        camped = [p for p in build.phones if p.connected_bssid == build.venue_ap.mac]
        assert camped
        for phone in camped:
            assert phone.scans_performed == 0


class TestConfigValidation:
    def _config(self, **overrides):
        kwargs = dict(
            venue_name="University Canteen",
            mobility="static",
            people_per_min=10.0,
            duration=60.0,
        )
        kwargs.update(overrides)
        return ScenarioConfig(**kwargs)

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValueError):
            self._config(duration=0.0)
        with pytest.raises(ValueError):
            self._config(duration=-5.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            self._config(people_per_min=-1.0)

    def test_bad_camped_share_rejected(self):
        with pytest.raises(ValueError):
            self._config(camped_share=1.5)
