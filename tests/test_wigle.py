"""Tests for the WiGLE-like registry (repro.wigle)."""

import pytest

from repro.city.aps import AccessPoint
from repro.dot11.capabilities import Security
from repro.geo.point import Point
from repro.wigle.database import WigleDatabase
from repro.wigle.queries import ssid_heat_values, top_ssids_by_count, top_ssids_by_heat
from repro.wigle.records import WigleRecord


def _small_db():
    aps = [
        AccessPoint("Chain", Security.OPEN, Point(0, 0), "chain:Chain"),
        AccessPoint("Chain", Security.OPEN, Point(100, 0), "chain:Chain"),
        AccessPoint("Chain", Security.OPEN, Point(200, 0), "chain:Chain"),
        AccessPoint("Cafe", Security.OPEN, Point(10, 0), "shop"),
        AccessPoint("Secret", Security.WPA2_PSK, Point(5, 0), "residential"),
        AccessPoint("Far", Security.OPEN, Point(5000, 5000), "shop"),
    ]
    return WigleDatabase.from_access_points(aps)


class TestRecords:
    def test_projection_hides_provenance(self):
        ap = AccessPoint("X", Security.OPEN, Point(1, 2), "chain:X")
        rec = WigleRecord.from_access_point(ap)
        assert rec.ssid == "X"
        assert rec.free
        assert rec.location == Point(1, 2)
        assert not hasattr(rec, "source")

    def test_secured_marked_not_free(self):
        ap = AccessPoint("Y", Security.WPA2_PSK, Point(0, 0), "shop")
        assert not WigleRecord.from_access_point(ap).free


class TestDatabase:
    def test_len_counts_aps_not_ssids(self):
        assert len(_small_db()) == 6

    def test_aps_of(self):
        db = _small_db()
        assert len(db.aps_of("Chain")) == 3
        assert db.aps_of("missing") == []

    def test_free_counts_exclude_secured(self):
        counts = _small_db().free_ssid_counts()
        assert counts["Chain"] == 3
        assert "Secret" not in counts

    def test_nearest_free_distinct_and_ordered(self):
        db = _small_db()
        near = db.nearest_free_ssids(Point(0, 0), 3)
        assert near == ["Chain", "Cafe", "Far"]

    def test_nearest_skips_secured(self):
        db = _small_db()
        assert "Secret" not in db.nearest_free_ssids(Point(5, 0), 10)

    def test_nearest_count_larger_than_population(self):
        db = _small_db()
        assert len(db.nearest_free_ssids(Point(0, 0), 50)) == 3  # 3 free SSIDs

    def test_nearest_zero(self):
        assert _small_db().nearest_free_ssids(Point(0, 0), 0) == []


class TestQueries:
    def test_top_by_count(self):
        ranked = top_ssids_by_count(_small_db(), 2)
        assert ranked[0] == ("Chain", 3)

    def test_top_by_count_negative_rejected(self):
        with pytest.raises(ValueError):
            top_ssids_by_count(_small_db(), -1)

    def test_heat_values_sum_over_aps(self, city, wigle):
        heats = ssid_heat_values(wigle, city.heatmap)
        # An SSID's heat is the sum over its APs, so a chain with many
        # APs in hot places must beat a single home router.
        assert heats["Free Public WiFi"] > 10_000

    def test_table4_rankings(self, city, wigle):
        """The headline Table IV reproduction."""
        by_count = [s for s, _ in top_ssids_by_count(wigle, 5)]
        assert by_count == [
            "-Free HKBN Wi-Fi-",
            "7-Eleven Free Wifi",
            "-Circle K Free Wi-Fi-",
            "CSL",
            "CMCC-WEB",
        ]
        by_heat = [s for s, _ in top_ssids_by_heat(wigle, city.heatmap, 5)]
        assert by_heat == [
            "Free Public WiFi",
            "#HKAirport Free WiFi",
            "-Free HKBN Wi-Fi-",
            "FREE 3Y5 AdWiFi",
            "7-Eleven Free Wifi",
        ]

    def test_heat_promotes_airport_over_count_rank(self, city, wigle):
        """#HKAirport ranks poorly by count but 2nd by heat — the
        paper's motivating observation for the heat map."""
        count_rank = [s for s, _ in top_ssids_by_count(wigle, 40)]
        heat_rank = [s for s, _ in top_ssids_by_heat(wigle, city.heatmap, 40)]
        assert count_rank.index("#HKAirport Free WiFi") > 5
        assert heat_rank.index("#HKAirport Free WiFi") == 1

    def test_nearest_at_attack_venue_mostly_unique(self, city, wigle):
        """Urban-canyon effect: the 40 nearest SSIDs around the passage
        are dominated by one-off homes and shops."""
        passage = city.venue("Central Subway Passage")
        near = wigle.nearest_free_ssids(passage.region.center, 40)
        chains = {c.name for c in city.chains}
        assert sum(1 for s in near if s in chains) <= 5
