"""Handoff robustness: corrupt records are detected, never applied.

PR 8 sends handoff records across process boundaries and stores them
in checkpoint files, so the codec and the schema validator become
crash-safety surfaces.  Properties:

* encode/decode round-trips any well-formed record batch bit-exactly
  (hypothesis when installed, a seeded sweep otherwise);
* every corruption mode we inject in chaos runs — truncated blobs,
  bit flips anywhere in the frame, duplicated records, torn or
  mangled tuples — raises :class:`CorruptHandoffError` instead of
  yielding a plausible-but-wrong batch.
"""

import pytest

from repro.sim.shards.handoff import (
    CorruptHandoffError,
    decode_records,
    encode_records,
    feedback,
    migrate,
    offer,
    probe,
    sorted_records,
    validate_batch,
    validate_outbox,
    validate_record,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without dev extras
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)

ROW = (1.0, 2.0, 0.5, -0.25, 3.0, 1.5, 0.0)


def _sample_batch(seed: int):
    """A deterministic mixed batch with unique applied keys."""
    base = seed * 10
    return sorted_records(
        [
            migrate(float(base + 1), 2, base + 10, ROW),
            probe(float(base + 2), 1, base + 11, 3),
            offer(float(base + 3), 0, base + 12, 4, (7, 8, 9)),
            feedback(float(base + 4), 3, base + 13, 5, 42),
        ]
    )


if HAVE_HYPOTHESIS:
    _times = st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
    )
    _ids = st.integers(min_value=0, max_value=10_000)
    _rows = st.tuples(*([st.floats(allow_nan=False, allow_infinity=False)] * 7))
    _bursts = st.tuples(_ids, _ids, _ids)

    _records = st.one_of(
        st.builds(migrate, _times, _ids, _ids, _rows),
        st.builds(probe, _times, _ids, _ids, _ids),
        st.builds(offer, _times, _ids, _ids, _ids, _bursts),
        st.builds(feedback, _times, _ids, _ids, _ids, _ids),
    )

    @needs_hypothesis
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_records, max_size=24, unique_by=lambda r: r[:5]))
    def test_roundtrip_property(records):
        assert decode_records(encode_records(records)) == list(records)

    @needs_hypothesis
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(_records, min_size=1, max_size=8, unique_by=lambda r: r[:5]),
        st.data(),
    )
    def test_any_bit_flip_is_detected(records, data):
        """Flipping any single bit of the frame either raises
        CorruptHandoffError or still decodes to the original batch
        (pickle framing can tolerate some don't-care bits); it never
        yields a *different* batch."""
        blob = encode_records(records)
        pos = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        flipped = bytearray(blob)
        flipped[pos] ^= 1 << bit
        try:
            decoded = decode_records(bytes(flipped))
        except CorruptHandoffError:
            return
        assert decoded == list(records)


def test_roundtrip_seeded_sweep():
    for seed in range(8):
        batch = _sample_batch(seed)
        assert decode_records(encode_records(batch)) == batch
    assert decode_records(encode_records([])) == []


class TestBlobCorruption:
    def test_truncated_blob(self):
        blob = encode_records(_sample_batch(1))
        for cut in (0, 3, 7, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CorruptHandoffError):
                decode_records(blob[:cut])

    def test_bad_magic(self):
        blob = encode_records(_sample_batch(1))
        with pytest.raises(CorruptHandoffError, match="magic"):
            decode_records(b"XXXX" + blob[4:])

    def test_crc_mismatch_on_body_flip(self):
        blob = bytearray(encode_records(_sample_batch(1)))
        blob[10] ^= 0xFF
        with pytest.raises(CorruptHandoffError, match="CRC"):
            decode_records(bytes(blob))

    def test_non_list_payload_rejected(self):
        import pickle
        import struct
        import zlib

        body = pickle.dumps({"not": "a list"}, protocol=4)
        blob = b"RHO1" + struct.pack(">I", zlib.crc32(body)) + body
        with pytest.raises(CorruptHandoffError, match="not a list"):
            decode_records(blob)

    def test_duplicate_record_rejected(self):
        rec = probe(1.0, 0, 5, 2)
        with pytest.raises(CorruptHandoffError, match="duplicate"):
            decode_records(encode_records([rec, rec]))


class TestRecordValidation:
    def test_good_records_pass(self):
        for rec in _sample_batch(0):
            assert validate_record(rec) is rec

    @pytest.mark.parametrize(
        "bad",
        [
            "not-a-tuple",
            (),
            ("x", 1.0, 0, 1, 2),  # unknown kind
            ("p", 1.0, 0, 1),  # truncated
            ("p", 1.0, 0, 1, 2, 3),  # over-long
            ("p", "soon", 0, 1, 2),  # non-numeric time
            ("p", True, 0, 1, 2),  # bool masquerading as time
            ("p", 1.0, 0.5, 1, 2),  # non-int district
            ("m", 1.0, 0, 1, -1, "row"),  # bad migrate payload
            ("m", 1.0, 0, 1, -1, ROW[:3]),  # torn migrate row
            ("o", 1.0, 0, 1, 2, [7, 8]),  # burst must be a tuple
            ("o", 1.0, 0, 1, 2, (7, "8")),  # non-int ssid in burst
            ("f", 1.0, 0, 1, 2, "ssid"),  # non-int feedback ssid
        ],
    )
    def test_bad_records_rejected(self, bad):
        with pytest.raises(CorruptHandoffError):
            validate_record(bad)

    def test_batch_duplicate_detection(self):
        batch = _sample_batch(2)
        with pytest.raises(CorruptHandoffError, match="duplicate"):
            validate_batch(batch + batch[:1])

    def test_outbox_bad_destination(self):
        with pytest.raises(CorruptHandoffError, match="destination"):
            validate_outbox({-1: []})
        with pytest.raises(CorruptHandoffError, match="destination"):
            validate_outbox({"0": []})

    def test_outbox_good(self):
        validate_outbox({0: _sample_batch(0), 3: _sample_batch(1)})
