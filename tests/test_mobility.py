"""Tests for mobility models and arrivals (repro.mobility)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.point import Point
from repro.geo.region import Rect
from repro.mobility.arrivals import ArrivalProcess, HourlyRates
from repro.mobility.base import PathMobility
from repro.mobility.corridor import corridor_walk
from repro.mobility.static import static_dwell
from repro.mobility.waypoints import waypoint_wander
from repro.sim.simulation import Simulation


class TestPathMobility:
    def test_interpolates_linearly(self):
        path = PathMobility([(0.0, Point(0, 0)), (10.0, Point(10, 0))])
        assert path.position_at(5.0) == Point(5, 0)

    def test_clamps_outside_lifetime(self):
        path = PathMobility([(1.0, Point(0, 0)), (2.0, Point(10, 0))])
        assert path.position_at(0.0) == Point(0, 0)
        assert path.position_at(99.0) == Point(10, 0)

    def test_enter_exit(self):
        path = PathMobility([(1.0, Point(0, 0)), (4.0, Point(1, 1))])
        assert path.t_enter == 1.0
        assert path.t_exit == 4.0

    def test_multi_knot(self):
        path = PathMobility(
            [(0.0, Point(0, 0)), (1.0, Point(10, 0)), (3.0, Point(10, 20))]
        )
        assert path.position_at(2.0) == Point(10, 10)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PathMobility([])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ValueError):
            PathMobility([(1.0, Point(0, 0)), (1.0, Point(1, 1))])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.1, 100.0), min_size=2, max_size=8, unique=True))
    def test_property_position_always_finite(self, times):
        times = sorted(times)
        knots = [(t, Point(t, -t)) for t in times]
        path = PathMobility(knots)
        for q in np.linspace(times[0] - 1, times[-1] + 1, 23):
            p = path.position_at(float(q))
            assert np.isfinite(p.x) and np.isfinite(p.y)


class TestStaticDwell:
    def test_stays_put(self):
        rng = np.random.default_rng(0)
        region = Rect(0, 0, 10, 10)
        mob = static_dwell(region, 5.0, 600.0, rng)
        assert mob.position_at(mob.t_enter) == mob.position_at(mob.t_exit)
        assert region.contains(mob.position_at(100.0))

    def test_minimum_dwell(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            mob = static_dwell(Rect(0, 0, 1, 1), 0.0, 400.0, rng, dwell_min=120.0)
            assert mob.t_exit - mob.t_enter >= 120.0

    def test_bad_mean_rejected(self):
        with pytest.raises(ValueError):
            static_dwell(Rect(0, 0, 1, 1), 0.0, 10.0, np.random.default_rng(0))


class TestCorridorWalk:
    def test_crosses_full_corridor(self):
        rng = np.random.default_rng(1)
        corridor = Rect(0, 0, 200, 15)
        walk = corridor_walk(corridor, 0.0, rng, extension=40.0)
        start = walk.position_at(walk.t_enter)
        end = walk.position_at(walk.t_exit)
        assert abs(start.x - end.x) == pytest.approx(280.0)

    def test_duration_matches_speed_bounds(self):
        rng = np.random.default_rng(2)
        corridor = Rect(0, 0, 200, 15)
        for _ in range(50):
            walk = corridor_walk(corridor, 0.0, rng, extension=0.0)
            duration = walk.t_exit - walk.t_enter
            speed = 200.0 / duration
            assert 0.5 <= speed <= 3.0

    def test_vertical_corridor(self):
        rng = np.random.default_rng(3)
        corridor = Rect(0, 0, 15, 200)
        walk = corridor_walk(corridor, 0.0, rng, extension=10.0)
        start = walk.position_at(walk.t_enter)
        end = walk.position_at(walk.t_exit)
        assert abs(start.y - end.y) == pytest.approx(220.0)
        assert 0 <= start.x <= 15

    def test_both_directions_occur(self):
        rng = np.random.default_rng(4)
        corridor = Rect(0, 0, 200, 15)
        starts = {
            corridor_walk(corridor, 0.0, rng).position_at(0.0).x > 100
            for _ in range(30)
        }
        assert starts == {True, False}


class TestWaypointWander:
    def test_stays_in_region(self):
        rng = np.random.default_rng(5)
        region = Rect(0, 0, 100, 80)
        for _ in range(20):
            mob = waypoint_wander(region, 0.0, rng)
            for t in np.linspace(mob.t_enter, mob.t_exit, 37):
                assert region.expanded(1e-6).contains(mob.position_at(float(t)))

    def test_visit_has_positive_duration(self):
        rng = np.random.default_rng(6)
        mob = waypoint_wander(Rect(0, 0, 100, 80), 10.0, rng)
        assert mob.t_exit > mob.t_enter == 10.0


class TestHourlyRates:
    def test_needs_twelve(self):
        with pytest.raises(ValueError):
            HourlyRates((1.0,) * 11)

    def test_no_negative(self):
        with pytest.raises(ValueError):
            HourlyRates((1.0,) * 11 + (-1.0,))

    def test_slot_lookup(self):
        rates = HourlyRates(tuple(float(i) for i in range(12)))
        assert rates.rate_for_slot(0) == 0.0
        assert rates.rate_for_slot(11) == 11.0

    def test_labels(self):
        labels = HourlyRates((1.0,) * 12).slot_labels
        assert labels[0] == "8am-9am"
        assert labels[4] == "12pm-1pm"
        assert labels[11] == "7pm-8pm"


class TestArrivalProcess:
    def _run(self, rate, minutes=30.0, probs=(1.0,)):
        sim = Simulation(seed=4)
        spawned = []
        proc = ArrivalProcess(
            rate, lambda size, t: spawned.append((size, t)),
            group_size_probs=probs, stop_at=minutes * 60.0,
        )
        sim.add_entity(proc)
        sim.run(minutes * 60.0 + 60.0)
        return spawned, proc

    def test_rate_approximately_honoured(self):
        spawned, _ = self._run(10.0, minutes=30.0)
        assert 200 < len(spawned) < 400  # ~300 expected

    def test_zero_rate_spawns_nothing(self):
        spawned, _ = self._run(0.0)
        assert spawned == []

    def test_stop_at_honoured(self):
        spawned, _ = self._run(10.0, minutes=10.0)
        assert all(t <= 600.0 for _, t in spawned)

    def test_group_sizes_follow_distribution(self):
        spawned, _ = self._run(20.0, probs=(0.0, 0.0, 1.0))
        assert spawned and all(size == 3 for size, _ in spawned)

    def test_people_counter(self):
        spawned, proc = self._run(10.0)
        assert proc.people_spawned == sum(size for size, _ in spawned)
        assert proc.groups_spawned == len(spawned)

    def test_callable_rate_with_thinning(self):
        sim = Simulation(seed=4)
        spawned = []
        proc = ArrivalProcess(
            lambda t: 10.0 if t < 600 else 0.0,
            lambda size, t: spawned.append(t),
            max_rate_per_min=10.0,
            stop_at=1800.0,
        )
        sim.add_entity(proc)
        sim.run(1900.0)
        assert spawned and all(t <= 600.5 for t in spawned)

    def test_callable_rate_requires_envelope(self):
        with pytest.raises(ValueError):
            ArrivalProcess(lambda t: 1.0, lambda s, t: None)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ArrivalProcess(-1.0, lambda s, t: None)

    def test_bad_group_probs_rejected(self):
        with pytest.raises(ValueError):
            ArrivalProcess(1.0, lambda s, t: None, group_size_probs=(-0.5, 1.5))
