"""Tests for the preliminary City-Hunter (repro.attacks.cityhunter_basic)."""

import pytest

from repro.attacks.cityhunter_basic import CityHunterBasic
from repro.dot11.frames import ProbeRequest, ProbeResponse
from repro.dot11.medium import Medium
from repro.geo.point import Point
from repro.sim.simulation import Simulation


class Sniffer:
    def __init__(self, mac="02:00:00:00:00:99"):
        self.mac = mac
        self.received = []

    def position_at(self, time):
        return Point(1, 0)

    def receive(self, frame, time):
        self.received.append(frame)

    def receive_burst(self, responses, time, spacing):
        self.received.extend(responses)


@pytest.fixture
def deployed(city, wigle):
    sim = Simulation(seed=2)
    medium = Medium(sim)
    venue = city.venue("University Canteen")
    attacker = CityHunterBasic(
        "02:aa:00:00:00:01", venue.region.center, medium, wigle=wigle
    )
    sniffer = Sniffer()
    # Co-locate the sniffer with the attacker so frames reach it.
    sniffer.position_at = lambda t: venue.region.center
    medium.attach(sniffer, 100.0)
    sim.add_entity(attacker)
    sim.run(0.001)
    return sim, attacker, sniffer


class TestSeeding:
    def test_database_seeded_from_wigle(self, deployed):
        _, attacker, _ = deployed
        # 100 nearby + 200 popular, minus overlap.
        assert 250 <= attacker.db_size <= 300

    def test_nearby_seeds_lead_the_order(self, deployed, city, wigle):
        _, attacker, _ = deployed
        venue = city.venue("University Canteen")
        nearest = wigle.nearest_free_ssids(venue.region.center, 5)
        assert attacker._order[:5] == nearest


class TestUntriedLists:
    def _drain(self, sim, sniffer):
        sim.run(sim.now + 1.0)
        out = [f.ssid for f in sniffer.received if isinstance(f, ProbeResponse)]
        sniffer.received.clear()
        return out

    def test_first_reply_is_head_40(self, deployed):
        sim, attacker, sniffer = deployed
        attacker.receive(ProbeRequest(sniffer.mac), sim.now)
        first = self._drain(sim, sniffer)
        assert first == attacker._order[:40]

    def test_second_reply_continues_where_first_stopped(self, deployed):
        sim, attacker, sniffer = deployed
        attacker.receive(ProbeRequest(sniffer.mac), sim.now)
        first = self._drain(sim, sniffer)
        attacker.receive(ProbeRequest(sniffer.mac), sim.now)
        second = self._drain(sim, sniffer)
        assert second == attacker._order[40:80]
        assert not set(first) & set(second)

    def test_database_exhaustion_sends_nothing(self, deployed):
        sim, attacker, sniffer = deployed
        for _ in range(attacker.db_size // 40 + 2):
            attacker.receive(ProbeRequest(sniffer.mac), sim.now)
            self._drain(sim, sniffer)  # let each burst land
        attacker.receive(ProbeRequest(sniffer.mac), sim.now)
        assert self._drain(sim, sniffer) == []

    def test_untried_lists_are_per_client(self, deployed):
        sim, attacker, sniffer = deployed
        attacker.receive(ProbeRequest(sniffer.mac), sim.now)
        self._drain(sim, sniffer)
        # A different client starts from the head again.
        other = Sniffer(mac="02:00:00:00:00:77")
        other.position_at = sniffer.position_at
        attacker.medium.attach(other, 100.0)
        attacker.receive(ProbeRequest(other.mac), sim.now)
        sim.run(sim.now + 1.0)
        ssids = [f.ssid for f in other.received if isinstance(f, ProbeResponse)]
        assert ssids == attacker._order[:40]


class TestHarvesting:
    def test_direct_probe_appends_to_tail(self, deployed):
        sim, attacker, sniffer = deployed
        size_before = attacker.db_size
        attacker.receive(ProbeRequest(sniffer.mac, "BrandNew"), sim.now)
        assert attacker.db_size == size_before + 1
        assert attacker._order[-1] == "BrandNew"

    def test_duplicate_direct_probe_not_duplicated(self, deployed):
        sim, attacker, sniffer = deployed
        attacker.receive(ProbeRequest(sniffer.mac, "BrandNew"), sim.now)
        size = attacker.db_size
        attacker.receive(ProbeRequest(sniffer.mac, "BrandNew"), sim.now)
        assert attacker.db_size == size

    def test_direct_probe_mimicked(self, deployed):
        sim, attacker, sniffer = deployed
        attacker.receive(ProbeRequest(sniffer.mac, "HomeNet"), sim.now)
        sim.run(sim.now + 1.0)
        ssids = [f.ssid for f in sniffer.received if isinstance(f, ProbeResponse)]
        assert ssids == ["HomeNet"]

    def test_wigle_seed_probed_directly_becomes_direct_origin(self, deployed):
        sim, attacker, sniffer = deployed
        seed_ssid = attacker._order[0]
        attacker.receive(ProbeRequest(sniffer.mac, seed_ssid), sim.now)
        sim.run(sim.now + 1.0)
        sniffer.received.clear()
        attacker.receive(ProbeRequest(sniffer.mac), sim.now)
        sim.run(sim.now + 1.0)
        rec_prov = attacker.session._provenance[sniffer.mac][seed_ssid]
        assert rec_prov.origin == "direct"
