"""Tests for smartphone behaviour (repro.devices.phone).

These drive a real Phone against a scripted AP on the frame-level
medium, so the 40-response reception ceiling is exercised end-to-end
rather than assumed.
"""

import pytest

from repro.devices.phone import Phone
from repro.devices.profiles import ScanProfile
from repro.dot11.capabilities import NetworkProfile, Security
from repro.dot11.frames import (
    AssocRequest,
    AssocResponse,
    AuthRequest,
    AuthResponse,
    Deauth,
    ProbeRequest,
    ProbeResponse,
)
from repro.dot11.medium import Medium
from repro.geo.point import Point
from repro.mobility.base import PathMobility
from repro.population.person import OsFamily, PersonSpec
from repro.sim.simulation import Simulation


class ScriptedAp:
    """An AP that answers every broadcast probe with N crafted SSIDs."""

    def __init__(self, mac, medium, ssids):
        self.mac = mac
        self.medium = medium
        self.ssids = list(ssids)
        self.probes = []
        self.assoc_requests = []

    def position_at(self, time):
        return Point(0, 0)

    def start(self, sim):
        self.medium.attach(self, 100.0)

    def receive(self, frame, time):
        if isinstance(frame, ProbeRequest):
            self.probes.append(frame)
            if frame.is_broadcast_probe:
                burst = [
                    ProbeResponse(self.mac, frame.src, s, Security.OPEN)
                    for s in self.ssids
                ]
                self.medium.transmit_response_burst(self, burst)
        elif isinstance(frame, AuthRequest):
            self.medium.transmit(self, AuthResponse(self.mac, frame.src, True))
        elif isinstance(frame, AssocRequest):
            self.assoc_requests.append(frame)
            self.medium.transmit(
                self, AssocResponse(self.mac, frame.src, frame.ssid, True)
            )


def _person(pnl_ssids, open_=True, unsafe=False, direct=()):
    sec = Security.OPEN if open_ else Security.WPA2_PSK
    pnl = {s: NetworkProfile(s, sec) for s in pnl_ssids}
    return PersonSpec(
        0, OsFamily.ANDROID, pnl, unsafe=unsafe, direct_probe_ssids=tuple(direct)
    )


def _phone(person, medium, duration=600.0, profile=None):
    mobility = PathMobility([(0.0, Point(10, 0)), (duration, Point(10, 0))])
    return Phone(
        "02:00:00:00:00:aa",
        person,
        mobility,
        medium,
        scan_profile=profile or ScanProfile(first_scan_max_delay=1.0),
    )


def _build(ssids, person, fidelity="frame", duration=600.0, profile=None):
    sim = Simulation(seed=8)
    medium = Medium(sim, fidelity=fidelity)
    ap = ScriptedAp("02:aa:00:00:00:01", medium, ssids)
    phone = _phone(person, medium, duration=duration, profile=profile)
    sim.add_entity(ap)
    sim.add_entity(phone)
    return sim, ap, phone


class TestReceptionCeiling:
    @pytest.mark.parametrize("fidelity", ["frame", "burst"])
    def test_at_most_forty_responses_accepted_per_scan(self, fidelity):
        person = _person(["not-there"])
        sim, ap, phone = _build([f"s{i}" for i in range(120)], person, fidelity)
        sim.run(5.0)  # exactly one scan
        assert phone.scans_performed == 1
        assert phone.responses_accepted == 40

    @pytest.mark.parametrize("fidelity", ["frame", "burst"])
    def test_small_burst_fully_received(self, fidelity):
        person = _person(["not-there"])
        sim, ap, phone = _build([f"s{i}" for i in range(7)], person, fidelity)
        sim.run(5.0)
        assert phone.responses_accepted == 7

    def test_ssid_past_position_forty_cannot_hit(self):
        target = "deep-ssid"
        ssids = [f"junk{i}" for i in range(40)] + [target]
        person = _person([target])
        sim, ap, phone = _build(ssids, person, duration=3.0)
        sim.run(5.0)
        assert phone.state != Phone.CONNECTED

    def test_ssid_at_position_forty_hits(self):
        target = "edge-ssid"
        ssids = [f"junk{i}" for i in range(39)] + [target]
        person = _person([target])
        sim, ap, phone = _build(ssids, person)
        sim.run(5.0)
        assert phone.state == Phone.CONNECTED


class TestAssociation:
    def test_full_handshake_connects(self):
        person = _person(["known"])
        sim, ap, phone = _build(["known"], person)
        sim.run(5.0)
        assert phone.state == Phone.CONNECTED
        assert phone.connected_ssid == "known"
        assert phone.connected_bssid == ap.mac
        assert [f.ssid for f in ap.assoc_requests] == ["known"]

    def test_first_matching_response_wins(self):
        person = _person(["second", "first"])
        sim, ap, phone = _build(["zzz", "first", "second"], person)
        sim.run(5.0)
        assert phone.connected_ssid == "first"

    def test_secured_pnl_entry_never_joins_evil_twin(self):
        person = _person(["corp"], open_=False)
        sim, ap, phone = _build(["corp"], person)
        sim.run(30.0)
        assert phone.state != Phone.CONNECTED

    def test_no_match_keeps_scanning(self):
        person = _person(["not-advertised"])
        sim, ap, phone = _build(["a", "b"], person, duration=500.0)
        sim.run(400.0)
        assert phone.scans_performed >= 2
        assert phone.state != Phone.CONNECTED

    def test_connected_phone_stops_scanning(self):
        person = _person(["known"])
        sim, ap, phone = _build(["known"], person, duration=900.0)
        sim.run(800.0)
        assert phone.state == Phone.CONNECTED
        assert len([p for p in ap.probes if p.is_broadcast_probe]) == 1


class TestDirectProbes:
    def test_unsafe_phone_sends_direct_probes(self):
        person = _person(["home", "x"], unsafe=True, direct=["home"])
        sim, ap, phone = _build([], person, duration=3.0)
        sim.run(5.0)
        direct = [p for p in ap.probes if not p.is_broadcast_probe]
        assert [p.ssid for p in direct] == ["home"]

    def test_safe_phone_sends_only_broadcast(self):
        person = _person(["home"])
        sim, ap, phone = _build([], person, duration=3.0)
        sim.run(5.0)
        assert all(p.is_broadcast_probe for p in ap.probes)


class TestDeparture:
    def test_phone_detaches_at_exit(self):
        person = _person(["nope"])
        sim, ap, phone = _build(["a"], person, duration=50.0)
        sim.run(100.0)
        assert phone.state == Phone.DEPARTED
        assert not phone.medium.is_attached(phone.mac)

    def test_departed_phone_stops_probing(self):
        person = _person(["nope"])
        sim, ap, phone = _build(["a"], person, duration=50.0)
        sim.run(400.0)
        # Only ~50 s of lifetime: at most the first couple of scans fired.
        assert phone.scans_performed <= 2
        assert len(ap.probes) == phone.scans_performed


class TestDeauth:
    def test_camped_phone_rescans_after_deauth(self):
        sim = Simulation(seed=8)
        medium = Medium(sim)
        ap = ScriptedAp("02:aa:00:00:00:01", medium, ["known"])
        person = _person(["known"])
        mobility = PathMobility([(0.0, Point(10, 0)), (600.0, Point(10, 0))])
        legit_bssid = "02:bb:00:00:00:02"
        phone = Phone(
            "02:00:00:00:00:aa",
            person,
            mobility,
            medium,
            camped_bssid=legit_bssid,
        )
        sim.add_entity(ap)
        sim.add_entity(phone)
        sim.run(10.0)
        assert phone.state == Phone.CONNECTED
        assert ap.probes == []  # camped: silent

        # A spoofed deauth naming the legit AP's BSSID frees the client.
        phone.receive(Deauth(src=legit_bssid, dst=phone.mac), sim.now)
        sim.run(30.0)
        assert ap.probes  # it rescanned...
        assert phone.state == Phone.CONNECTED
        assert phone.connected_bssid == ap.mac  # ...and the evil twin won

    def test_deauth_from_wrong_bssid_ignored(self):
        sim = Simulation(seed=8)
        medium = Medium(sim)
        person = _person(["known"])
        mobility = PathMobility([(0.0, Point(10, 0)), (600.0, Point(10, 0))])
        phone = Phone(
            "02:00:00:00:00:aa",
            person,
            mobility,
            medium,
            camped_bssid="02:bb:00:00:00:02",
        )
        sim.add_entity(phone)
        sim.run(1.0)
        phone.receive(Deauth(src="02:cc:00:00:00:03", dst=phone.mac), sim.now)
        assert phone.state == Phone.CONNECTED
