"""Tests for synthetic-city generation (repro.city)."""

import numpy as np
import pytest

from repro.city.aps import ATTACK_VENUE_KINDS, terminal_region
from repro.city.chains import ChainSpec, PlacementMix, default_chain_catalog
from repro.city.model import CityConfig, build_city
from repro.city.venues import VenueKind, default_venues, venue_by_name
from repro.dot11.ssid import validate_ssid
from repro.geo.point import Point
from repro.geo.region import Rect


class TestChainCatalog:
    def test_every_spec_valid(self):
        for spec in default_chain_catalog():
            validate_ssid(spec.name)
            assert spec.ap_count > 0
            assert 0 <= spec.adoption <= 1

    def test_named_paper_ssids_present(self):
        names = {c.name for c in default_chain_catalog()}
        for expected in (
            "-Free HKBN Wi-Fi-",
            "7-Eleven Free Wifi",
            "-Circle K Free Wi-Fi-",
            "CSL",
            "CMCC-WEB",
            "Free Public WiFi",
            "FREE 3Y5 AdWiFi",
        ):
            assert expected in names

    def test_ap_count_ordering_matches_table4_left(self):
        by_count = sorted(
            default_chain_catalog(), key=lambda c: -c.ap_count
        )
        top5 = [c.name for c in by_count[:5] if c.security.is_open]
        assert top5[:2] == ["-Free HKBN Wi-Fi-", "7-Eleven Free Wifi"]

    def test_placement_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            PlacementMix(hot=0.5, street=0.6)

    def test_placement_mix_no_negative(self):
        with pytest.raises(ValueError):
            PlacementMix(hot=-0.1, street=1.1)

    def test_chain_spec_validation(self):
        with pytest.raises(ValueError):
            ChainSpec("X", 0, PlacementMix(street=1.0), adoption=0.1)
        with pytest.raises(ValueError):
            ChainSpec("X", 5, PlacementMix(street=1.0), adoption=1.5)


class TestVenues:
    def test_four_attack_venues_present(self):
        venues = default_venues()
        kinds = {v.kind for v in venues}
        for needed in ATTACK_VENUE_KINDS:
            assert needed in kinds

    def test_airport_present_and_remote(self):
        venues = default_venues()
        airport = next(v for v in venues if v.kind is VenueKind.AIRPORT)
        canteen = next(v for v in venues if v.kind is VenueKind.CANTEEN)
        assert airport.region.center.distance_to(canteen.region.center) > 10_000

    def test_lookup_by_name(self):
        venues = default_venues()
        assert venue_by_name(venues, "University Canteen").kind is VenueKind.CANTEEN
        with pytest.raises(KeyError):
            venue_by_name(venues, "Atlantis")


class TestTerminalRegion:
    def test_centered_and_shrunk(self):
        airport = Rect(0, 0, 1000, 500)
        term = terminal_region(airport, shrink=0.3)
        assert term.center == airport.center
        assert term.width == pytest.approx(300)
        assert term.height == pytest.approx(150)


class TestCityModel:
    def test_city_has_all_ap_sources(self, city):
        sources = {ap.source.split(":")[0] for ap in city.aps}
        assert sources == {"chain", "venue", "shop", "residential"}

    def test_chain_ap_counts_exact(self, city):
        from collections import Counter

        counts = Counter(
            ap.source for ap in city.aps if ap.source.startswith("chain:")
        )
        for spec in city.chains:
            assert counts[f"chain:{spec.name}"] == spec.ap_count

    def test_airport_aps_in_terminal(self, city):
        airport = city.venue("International Airport")
        term = terminal_region(airport.region)
        aps = [a for a in city.aps if a.source == "venue:International Airport"]
        assert len(aps) == 231
        assert all(term.contains(a.location) for a in aps)

    def test_public_pool_only_open_networks(self, city):
        secured = set(city.secured_public_ssids())
        for pub in city.public_pool:
            assert pub.ssid not in secured
            assert 0 < pub.adoption < 0.05

    def test_adoption_mass_in_calibrated_band(self, city):
        # The one number the whole hit-rate calibration hangs off.
        assert 0.10 < city.expected_adoption_mass() < 0.16

    def test_open_shop_pool_nonempty(self, city):
        assert len(city.open_shop_ssids) > 3000

    def test_venue_lookup(self, city):
        assert city.venue("University Canteen").kind is VenueKind.CANTEEN
        with pytest.raises(KeyError):
            city.venue("nope")

    def test_deterministic_generation(self):
        config = CityConfig(n_shops=100, n_residential=100, background_photos=100)
        a = build_city(config, np.random.default_rng(5))
        b = build_city(config, np.random.default_rng(5))
        assert [x.ssid for x in a.aps] == [x.ssid for x in b.aps]
        assert len(a.photos) == len(b.photos)

    def test_urban_canyon_clusters_exist(self, city):
        """Every attack venue is surrounded by dense unique APs."""
        for name in (
            "University Canteen",
            "Central Subway Passage",
            "Harbour Shopping Center",
            "City Railway Station",
        ):
            venue = city.venue(name)
            center = venue.region.center
            near = [
                ap
                for ap in city.aps
                if ap.location.distance_to(center) < 260
                and ap.source in ("residential", "shop")
            ]
            assert len(near) > 300


class TestPhotosAndHeatmap:
    def test_photo_volume_tracks_crowd(self, city):
        airport = city.venue("International Airport")
        canteen = city.venue("University Canteen")
        in_region = lambda r: sum(1 for p in city.photos if r.contains(p.location))
        assert in_region(airport.region) > in_region(canteen.region)

    def test_heat_at_hot_venue_beats_wilderness(self, city):
        mall = city.venue("iSQUARE Mall")
        assert city.heatmap.heat_at(mall.region.center) > city.heatmap.heat_at(
            Point(100, 100)
        )

    def test_hottest_cells_are_sorted(self, city):
        cells = city.heatmap.hottest_cells(10)
        heats = [h for _, h in cells]
        assert heats == sorted(heats, reverse=True)
        assert len(cells) == 10

    def test_render_produces_grid(self, city):
        art = city.heatmap.render(cols=40, rows=20)
        lines = art.splitlines()
        assert len(lines) >= 10
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_total_photos_counted(self, city):
        assert city.heatmap.total_photos == len(city.photos)
