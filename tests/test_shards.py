"""District-sharded city: RNG, partition, SoA and engine invariance.

The contract under test is the tentpole of the sharding PR: a
:class:`~repro.sim.shards.scenario.ShardScenario` produces the exact
same result — ``shardsim.*`` metrics, walker rows, hunter states, and
therefore :meth:`~repro.sim.shards.engine.ShardRunResult.digest` — at
any shard count, with either array backend, in either execution mode.
Everything here runs small scenarios (seconds, not minutes); the
golden-scale pins live in ``test_shard_golden.py``.
"""

import json
import os
import pathlib
import sys

import numpy as np
import pytest

from repro.geo.grid import DistrictPartition
from repro.obs.artifacts import ARTIFACT_DIR_ENV
from repro.sim.shards import (
    SHARD_MODE_ENV,
    SHARDS_ENV,
    ShardScenario,
    resolve_shard_mode,
    resolve_shards,
    run_sharded,
)
from repro.sim.shards.attacker import LiteHunter
from repro.sim.shards.scenario import derive_sensors, derive_walkers
from repro.sim.shards.soa import BACKEND_ENV, resolve_backend
from repro.sim.shards.srng import stream_base, u01, u01_vec

# Sized so shard seams see real traffic: walkers cover up to ~324 m in
# the duration, crossing interior stripe boundaries at 2+ shards.
SMALL = ShardScenario(
    stations=80,
    sensors=10,
    duration=180.0,
    seed=13,
    size_m=360.0,
)


@pytest.fixture(scope="module")
def small_result():
    """The 1-shard reference run of the small scenario."""
    return run_sharded(SMALL, shards=1)


# -- stateless RNG --------------------------------------------------------


class TestStatelessRng:
    def test_scalar_in_unit_interval_and_deterministic(self):
        base = stream_base(7, "walker")
        draws = [u01(base, i, c) for i in range(50) for c in range(4)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert draws == [u01(base, i, c) for i in range(50) for c in range(4)]

    def test_vector_bit_identical_to_scalar(self):
        base = stream_base(99, "walker")
        ids = np.arange(500, dtype=np.uint64)
        for counter in (0, 1, 7, 12345):
            vec = u01_vec(base, ids, counter)
            scalar = np.array([u01(base, int(i), counter) for i in ids])
            assert (vec == scalar).all()

    def test_streams_do_not_collide(self):
        walkers = stream_base(7, "walker")
        sensors = stream_base(7, "sensor")
        assert walkers != sensors
        assert u01(walkers, 0, 0) != u01(sensors, 0, 0)


# -- district partition ---------------------------------------------------


class TestDistrictPartition:
    def test_stripes_tile_the_city(self):
        part = DistrictPartition(960.0, 120.0)
        for shards in (1, 2, 3, 4, 8):
            bounds = [part.stripe_bounds(k, shards) for k in range(shards)]
            assert bounds[0][0] == 0.0
            assert bounds[-1][1] == part.size_m
            for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                assert hi == lo

    def test_point_owner_matches_stripe(self):
        part = DistrictPartition(960.0, 120.0)
        for shards in (1, 2, 4):
            for x in np.linspace(0.0, 959.9, 97):
                owner = part.shard_of_point(float(x), 5.0, shards)
                lo, hi = part.stripe_bounds(owner, shards)
                assert lo <= x < hi or (x >= lo and hi == part.size_m)

    def test_district_ids_are_shard_count_invariant(self):
        """The handoff sort key leans on this: districts never move."""
        part = DistrictPartition(720.0, 120.0)
        assert part.districts == 36
        assert part.district_of(0.0, 0.0) == 0
        assert part.district_of(719.0, 719.0) == 35
        # Clamping: points nudged outside still map into the grid.
        assert part.district_of(-5.0, 9999.0) == 30

    def test_every_column_owned_exactly_once(self):
        part = DistrictPartition(2400.0, 120.0)
        for shards in (1, 2, 4, 7):
            owners = [part.shard_of_column(ix, shards) for ix in range(part.nx)]
            assert set(owners) == set(range(shards))
            assert owners == sorted(owners)  # contiguous stripes


# -- derivations ----------------------------------------------------------


class TestDerivations:
    def test_backends_derive_identical_walkers(self):
        a = derive_walkers(SMALL, "numpy")
        b = derive_walkers(SMALL, "python")
        for col in ("t0", "t_exit", "x0", "y0", "vx", "vy", "period", "phase"):
            va = [float(v) for v in getattr(a, col)]
            vb = [float(v) for v in getattr(b, col)]
            assert va == vb, f"column {col} differs between backends"
        assert a.pnl_open == b.pnl_open

    def test_sensors_inside_city(self):
        for sid, x, y in derive_sensors(SMALL):
            assert 0.0 <= x < SMALL.size_m
            assert 0.0 <= y < SMALL.size_m

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            ShardScenario(stations=0, sensors=4, duration=60.0)
        with pytest.raises(ValueError):
            ShardScenario(stations=4, sensors=4, duration=60.0, size_m=50.0)
        with pytest.raises(ValueError):
            ShardScenario(stations=4, sensors=4, duration=60.0, open_share=0.0)


# -- LiteHunter core ------------------------------------------------------


class TestLiteHunter:
    def test_burst_never_repeats_per_walker(self):
        hunter = LiteHunter(universe=40, pb_size=20, fb_size=4, burst_size=6)
        seen = set()
        for _ in range(5):
            burst = hunter.burst_for(3)
            assert not (set(burst) & seen)
            seen |= set(burst)
        assert hunter.untried(3) == frozenset(range(40)) - seen

    def test_feedback_moves_ssid_up_and_into_fb(self):
        hunter = LiteHunter(universe=10, pb_size=10, fb_size=2, burst_size=3)
        assert hunter.feedback(1, 9) is None  # never offered to walker 1
        assert hunter.order[0] == 9 or hunter.weights[9] > 1
        assert hunter.fb == [9]
        hunter.feedback(1, 4)
        assert hunter.fb == [4, 9]
        hunter.feedback(1, 7)
        assert hunter.fb == [7, 4]  # capped at fb_size=2

    def test_order_matches_sort_oracle_after_hits(self):
        hunter = LiteHunter(universe=30, pb_size=30, fb_size=4, burst_size=5)
        for ssid in (3, 3, 17, 29, 3, 17):
            hunter.feedback(0, ssid)
        oracle = sorted(range(30), key=lambda s: (-hunter.weights[s], s))
        assert hunter.order == oracle


# -- engine invariance ----------------------------------------------------


class TestShardInvariance:
    def test_digest_invariant_across_shard_counts(self, small_result):
        for shards in (2, 3, 4):
            result = run_sharded(SMALL, shards=shards)
            assert result.digest() == small_result.digest(), (
                f"digest diverged at {shards} shards"
            )

    def test_backend_invariance(self, small_result):
        result = run_sharded(SMALL, shards=2, backend="python")
        assert result.digest() == small_result.digest()

    def test_process_mode_invariance(self, small_result):
        result = run_sharded(SMALL, shards=2, mode="process")
        assert result.mode == "process"
        assert result.digest() == small_result.digest()

    def test_run_is_not_trivially_empty(self, small_result):
        s = small_result.summary
        assert s["probed"] > 0
        assert s["hits"] > 0
        assert s["hits"] == s["feedbacks"]
        assert s["connected"] <= s["probed"] <= SMALL.stations
        bb = small_result.buffer_breakdown()
        assert bb.from_popularity + bb.from_freshness == s["hits"]

    def test_session_summary_is_broadcast_only(self, small_result):
        summary = small_result.session_summary()
        assert summary.direct_clients == 0
        assert summary.total_clients == small_result.summary["probed"]
        assert summary.connected_broadcast == small_result.summary["connected"]

    def test_shardops_namespace_excluded_from_digest(self, small_result):
        """Per-shard operational metrics may vary with the shard count;
        the digest must only cover the shardsim workload namespace."""
        counters = small_result.metrics["counters"]
        assert any(k.startswith("shardops.") for k in counters)
        assert all(
            k.startswith(("shardsim.", "shardops.")) for k in counters
        )


# -- knob resolution ------------------------------------------------------


class TestKnobResolution:
    def test_resolve_shards_env(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        assert resolve_shards() == 1
        monkeypatch.setenv(SHARDS_ENV, "4")
        assert resolve_shards() == 4
        assert resolve_shards(2) == 2  # explicit beats env
        with pytest.raises(ValueError):
            resolve_shards(0)

    def test_resolve_mode_env(self, monkeypatch):
        monkeypatch.delenv(SHARD_MODE_ENV, raising=False)
        assert resolve_shard_mode() == "inline"
        monkeypatch.setenv(SHARD_MODE_ENV, "process")
        assert resolve_shard_mode() == "process"
        with pytest.raises(ValueError):
            resolve_shard_mode("threads")

    def test_resolve_backend_env(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend() == "numpy"
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert resolve_backend() == "python"
        assert resolve_backend("numpy") == "numpy"
        with pytest.raises(ValueError):
            resolve_backend("fortran")


# -- benchmark artefact routing -------------------------------------------


class TestArtifactRouting:
    def test_bench_emit_honours_artifact_dir(self, tmp_path, monkeypatch):
        """The benchmark helpers must write where ``REPRO_ARTIFACT_DIR``
        points, so concurrent CI jobs stop racing on benchmarks/out/."""
        bench_dir = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
        monkeypatch.syspath_prepend(str(bench_dir))
        monkeypatch.setenv(ARTIFACT_DIR_ENV, str(tmp_path / "routed"))
        sys.modules.pop("_shared", None)
        import _shared

        _shared.emit("routing_probe", "hello")
        assert (tmp_path / "routed" / "routing_probe.txt").read_text() == "hello\n"
        assert _shared.out_dir() == tmp_path / "routed"
        sys.modules.pop("_shared", None)

    def test_shards_bench_doc_gateable(self, tmp_path, monkeypatch, small_result):
        """A BENCH_shards-style document round-trips through the
        bench-regression gate with the shards extractor."""
        from repro.obs.bench import compare_bench

        doc = {
            "schema": "repro.bench_shards/v1",
            "grid": [
                {
                    "stations": 80,
                    "shards": s,
                    "speedup": 1.0 if s == 1 else 2.5,
                    "stations_per_s": 1000.0 * s,
                    "handoff_fraction": 0.01,
                }
                for s in (1, 4)
            ],
            "max_speedup": 2.5,
        }
        report = compare_bench(doc, json.loads(json.dumps(doc)), tolerance=0.1)
        assert report["ok"]
        gated = [d["metric"] for d in report["deltas"] if d["gated"]]
        assert "speedup@80st/4sh" in gated
        assert "max_speedup" in gated
        assert not any(d["metric"] == "speedup@80st/1sh" for d in report["deltas"])
        worse = json.loads(json.dumps(doc))
        worse["grid"][1]["speedup"] = 1.1
        worse["max_speedup"] = 1.1
        report = compare_bench(worse, doc, tolerance=0.1)
        assert not report["ok"]
        assert "speedup@80st/4sh" in report["regressions"]


# -- heartbeats -----------------------------------------------------------


def test_per_shard_heartbeats_written(tmp_path, monkeypatch):
    monkeypatch.setenv(ARTIFACT_DIR_ENV, str(tmp_path))
    monkeypatch.setenv("REPRO_HEARTBEAT", "30")
    run_sharded(SMALL, shards=2)
    files = sorted(p.name for p in (tmp_path / "telemetry").glob("shard-*.jsonl"))
    assert files == ["shard-0.jsonl", "shard-1.jsonl"]
    entry = json.loads(
        (tmp_path / "telemetry" / "shard-0.jsonl").read_text().splitlines()[-1]
    )
    assert entry["spec"] == "shard 0/2"


def test_heartbeats_off_by_default(tmp_path, monkeypatch):
    monkeypatch.setenv(ARTIFACT_DIR_ENV, str(tmp_path))
    monkeypatch.delenv("REPRO_HEARTBEAT", raising=False)
    run_sharded(SMALL, shards=2)
    assert not (tmp_path / "telemetry").exists()
