"""Differential tests: spatial-index medium vs brute-force medium.

The index is contractually a *pure accelerator* — every test here runs
the same scripted world twice, once with ``index=True`` and once with
``index=False``, and demands bit-identical delivery logs (receiver,
sender, time triples in order), delivered-frame counts and fault-loss
metrics.  Layouts, mobility, loss rates and fault plans are randomized
across seeds so the equivalence is exercised well beyond any single
hand-built topology.
"""

import math
import os

import numpy as np
import pytest

from repro.dot11.frames import ProbeRequest, ProbeResponse
from repro.dot11.medium import (
    MEDIUM_INDEX_ENV,
    Medium,
    resolve_medium_index,
)
from repro.dot11.propagation import LogDistanceShadowing
from repro.faults.plan import GilbertElliottParams
from repro.geo.point import Point
from repro.sim.simulation import Simulation


class MovingStation:
    """Linear-motion station with an honest speed bound, logging receives."""

    def __init__(self, mac, origin, velocity=(0.0, 0.0)):
        self.mac = mac
        self._origin = origin
        self._velocity = velocity
        self.max_speed_mps = math.hypot(*velocity)
        self.log = []

    def position_at(self, time):
        return Point(
            self._origin.x + self._velocity[0] * time,
            self._origin.y + self._velocity[1] * time,
        )

    def receive(self, frame, time):
        self.log.append((self.mac, frame.src, time))


class UnboundedStation(MovingStation):
    """Same motion, but refuses to promise a speed bound."""

    def __init__(self, mac, origin, velocity=(0.0, 0.0)):
        super().__init__(mac, origin, velocity)
        self.max_speed_mps = None


def _build_world(
    index,
    layout_seed,
    n_stations=40,
    n_frames=60,
    area_m=600.0,
    loss_rate=0.0,
    burst_loss=None,
    moving_share=0.5,
    unbounded_every=0,
    sim_seed=9,
):
    """One scripted world; returns (sim, medium, stations) ready to run.

    All randomness comes from a layout RNG seeded independently of the
    simulation, so the index=True and index=False worlds are built from
    byte-identical ingredients.
    """
    rng = np.random.default_rng(layout_seed)
    sim = Simulation(seed=sim_seed)
    medium = Medium(
        sim, loss_rate=loss_rate, burst_loss=burst_loss, index=index
    )
    stations = []
    for i in range(n_stations):
        origin = Point(rng.uniform(0, area_m), rng.uniform(0, area_m))
        if rng.random() < moving_share:
            velocity = (rng.uniform(-3, 3), rng.uniform(-3, 3))
        else:
            velocity = (0.0, 0.0)
        cls = (
            UnboundedStation
            if unbounded_every and i % unbounded_every == 0
            else MovingStation
        )
        st = cls(f"02:00:00:00:00:{i:02x}", origin, velocity)
        stations.append(st)
        medium.attach(st, float(rng.uniform(40, 80)))
    for _ in range(n_frames):
        sender = stations[int(rng.integers(0, n_stations))]
        medium.transmit(
            sender, ProbeRequest(sender.mac), airtime=float(rng.uniform(0.01, 30))
        )
    return sim, medium, stations


def _run_world(index, **kwargs):
    sim, medium, stations = _build_world(index, **kwargs)
    sim.run(40.0)
    log = []
    for st in stations:
        log.extend(st.log)
    log.sort()
    return {
        "log": log,
        "delivered": medium.frames_delivered,
        "fault_lost": medium.fault_frames_lost,
        "metrics": sim.metrics.to_dict()["counters"],
        "medium": medium,
    }


def _assert_equivalent(kwargs):
    fast = _run_world(True, **kwargs)
    slow = _run_world(False, **kwargs)
    assert fast["log"] == slow["log"]
    assert fast["delivered"] == slow["delivered"]
    assert fast["fault_lost"] == slow["fault_lost"]
    assert fast["metrics"] == slow["metrics"]
    return fast, slow


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("layout_seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_randomized_layouts_static(self, layout_seed):
        _assert_equivalent(dict(layout_seed=layout_seed, moving_share=0.0))

    @pytest.mark.parametrize("layout_seed", [10, 11, 12, 13, 14, 15])
    def test_randomized_layouts_mobile(self, layout_seed):
        fast, _ = _assert_equivalent(
            dict(layout_seed=layout_seed, moving_share=0.8)
        )
        assert fast["medium"].index_queries > 0

    @pytest.mark.parametrize("layout_seed", [20, 21, 22])
    def test_with_uniform_loss(self, layout_seed):
        _assert_equivalent(dict(layout_seed=layout_seed, loss_rate=0.25))

    @pytest.mark.parametrize("layout_seed", [30, 31, 32])
    def test_with_gilbert_elliott_faults(self, layout_seed):
        fast, _ = _assert_equivalent(
            dict(
                layout_seed=layout_seed,
                loss_rate=0.1,
                burst_loss=GilbertElliottParams(),
            )
        )
        # The fault chain genuinely fired, so its draws were compared.
        assert fast["fault_lost"] > 0

    @pytest.mark.parametrize("layout_seed", [40, 41])
    def test_with_unbounded_stations_mixed_in(self, layout_seed):
        """Stations without a speed bound ride the exact side path."""
        _assert_equivalent(
            dict(layout_seed=layout_seed, moving_share=0.7, unbounded_every=3)
        )

    def test_index_actually_prunes(self):
        """In a spread layout the index must visit fewer candidates than
        a full scan would — otherwise it is dead weight."""
        fast = _run_world(
            True, layout_seed=50, n_stations=80, area_m=2000.0, moving_share=0.3
        )
        medium = fast["medium"]
        assert medium.index_queries > 0
        scanned = medium.index_candidates / medium.index_queries
        assert scanned < 80 * 0.5  # at least half the scan avoided


class TestMidDeliveryMutation:
    """Regression: attach/detach during a delivery must neither crash
    nor perturb the already-resolved recipient snapshot."""

    def _world(self, index):
        sim = Simulation(seed=4)
        medium = Medium(sim, index=index)
        a = MovingStation("02:00:00:00:00:aa", Point(0, 0))
        b = MovingStation("02:00:00:00:00:bb", Point(10, 0))
        c = MovingStation("02:00:00:00:00:cc", Point(20, 0))
        return sim, medium, a, b, c

    @pytest.mark.parametrize("index", [True, False])
    def test_receiver_detaches_peer_mid_delivery(self, index):
        sim, medium, a, b, c = self._world(index)
        for st in (a, b, c):
            medium.attach(st, 50.0)

        def detach_c(frame, time):
            MovingStation.receive(b, frame, time)
            medium.detach(c.mac)

        b.receive = detach_c
        medium.transmit(a, ProbeRequest(a.mac))
        sim.run(1.0)
        # c was in the snapshot (in range at delivery time) so it still
        # receives this frame; it is gone for the next one.
        assert len(c.log) == 1
        medium.transmit(a, ProbeRequest(a.mac))
        sim.run(2.0)
        assert len(c.log) == 1
        assert len(b.log) == 2

    @pytest.mark.parametrize("index", [True, False])
    def test_receiver_attaches_newcomer_mid_delivery(self, index):
        sim, medium, a, b, c = self._world(index)
        medium.attach(a, 50.0)
        medium.attach(b, 50.0)

        def attach_c(frame, time):
            MovingStation.receive(b, frame, time)
            if not medium.is_attached(c.mac):
                medium.attach(c, 50.0)

        b.receive = attach_c
        medium.transmit(a, ProbeRequest(a.mac))
        sim.run(1.0)
        # c joined after recipients were resolved: not this frame.
        assert c.log == []
        medium.transmit(a, ProbeRequest(a.mac))
        sim.run(2.0)
        assert len(c.log) == 1

    @pytest.mark.parametrize("index", [True, False])
    def test_monitor_detaches_itself_during_burst(self, index):
        sim, medium, a, b, c = self._world(index)
        medium = Medium(sim, fidelity="burst", index=index)
        medium.attach(a, 50.0)
        medium.attach(b, 50.0)
        medium.attach(c, 50.0, promiscuous=True)

        def self_detach(frame, time):
            MovingStation.receive(c, frame, time)
            medium.detach(c.mac)

        c.receive = self_detach
        from repro.dot11.capabilities import Security

        burst = [
            ProbeResponse(a.mac, b.mac, f"net-{i}", Security.OPEN)
            for i in range(3)
        ]
        medium.transmit_response_burst(a, burst)
        sim.run(1.0)
        assert len(c.log) == 3  # full overheard burst despite self-detach
        assert len(b.log) == 3


class TestIndexMechanics:
    def test_reattach_keeps_delivery_order(self):
        """Re-attaching an existing MAC must not move it to the back of
        the delivery order (dict insertion order is preserved, and the
        index's sequence numbers must agree)."""
        results = []
        for index in (True, False):
            sim = Simulation(seed=8)
            medium = Medium(sim, loss_rate=0.5, index=index)
            stations = [
                MovingStation(f"02:00:00:00:01:{i:02x}", Point(5.0 * i, 0))
                for i in range(12)
            ]
            for st in stations:
                medium.attach(st, 100.0)
            medium.attach(stations[3], 100.0)  # re-attach, same slot
            medium.transmit(stations[0], ProbeRequest(stations[0].mac))
            sim.run(1.0)
            log = []
            for st in stations:
                log.extend(st.log)
            results.append(sorted(log))
        assert results[0] == results[1]

    def test_stochastic_propagation_disables_index(self):
        sim = Simulation(seed=1)
        medium = Medium(
            sim, propagation=LogDistanceShadowing(), index=True
        )
        assert not medium.index_active

    def test_deterministic_propagation_enables_index(self):
        sim = Simulation(seed=1)
        assert Medium(sim, index=True).index_active
        assert not Medium(sim, index=False).index_active

    def test_env_resolution(self, monkeypatch):
        monkeypatch.delenv(MEDIUM_INDEX_ENV, raising=False)
        assert resolve_medium_index() is True
        for off in ("0", "off", "false", "no", "OFF", " Off "):
            monkeypatch.setenv(MEDIUM_INDEX_ENV, off)
            assert resolve_medium_index() is False
        monkeypatch.setenv(MEDIUM_INDEX_ENV, "1")
        assert resolve_medium_index() is True
        # Explicit argument beats the environment.
        monkeypatch.setenv(MEDIUM_INDEX_ENV, "off")
        assert resolve_medium_index(True) is True

    def test_detach_unknown_mac_with_index(self):
        sim = Simulation(seed=0)
        medium = Medium(sim, index=True)
        medium.detach("02:aa:aa:aa:aa:aa")  # must not raise

    def test_index_stats_never_touch_metrics(self):
        """Index bookkeeping must stay out of sim.metrics — counters
        there are part of the golden on/off equivalence contract."""
        fast = _run_world(True, layout_seed=60, moving_share=0.5)
        assert fast["medium"].index_queries > 0
        for key in fast["metrics"]:
            assert "index" not in key

    def test_index_enabled_by_default_env(self, monkeypatch):
        monkeypatch.delenv(MEDIUM_INDEX_ENV, raising=False)
        sim = Simulation(seed=0)
        assert Medium(sim).index_active

    def test_env_off_disables_by_default(self, monkeypatch):
        monkeypatch.setenv(MEDIUM_INDEX_ENV, "off")
        sim = Simulation(seed=0)
        assert not Medium(sim).index_active
        assert os.environ[MEDIUM_INDEX_ENV] == "off"
