"""Tests for table/ratio rendering (repro.util.tables)."""

import pytest

from repro.util.tables import render_ratio, render_table


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]
        # All data lines share one width.
        assert len(lines[2]) == len(lines[3])

    def test_title_prepended(self):
        out = render_table(["a"], [[1]], title="Table X")
        assert out.splitlines()[0] == "Table X"

    def test_float_formatting_one_decimal(self):
        out = render_table(["v"], [[3.14159]])
        assert "3.1" in out
        assert "3.14" not in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestRenderRatio:
    def test_paper_style_annotation(self):
        # Fig. 6 annotates 243/69 = 3.5 above the first bar.
        assert render_ratio(243, 69) == "243/69 = 3.5"

    def test_zero_denominator(self):
        assert render_ratio(5, 0) == "5/0 = inf"

    def test_zero_over_zero(self):
        assert render_ratio(0, 0) == "0/0 = inf"
