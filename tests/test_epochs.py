"""Tests for the per-epoch barrier tracer (repro.obs.epochs).

Three contracts: the tracer's files read back faithfully (torn lines
tolerated, stale files rotated), a sharded run under REPRO_EPOCH_TRACE
actually produces spans for every shard, and the Chrome trace-event
export validates — one track per shard, phase and barrier spans, flow
arrows that only point at spans that exist.  Digest invariance with
tracing on lives in test_shard_golden.py next to the other golden
contracts.
"""

import json

import pytest

from repro.cli import main
from repro.obs.epochs import (
    EPOCH_TRACE_ENV,
    EpochTracer,
    epoch_file,
    epoch_trace_doc,
    load_epoch_dir,
    maybe_epoch_tracer,
    read_epoch_records,
    resolve_epoch_trace,
    write_epoch_trace,
)
from repro.obs.lineage import validate_chrome_trace
from repro.sim.shards import ShardScenario, run_sharded

SCENARIO = ShardScenario(
    stations=120, sensors=16, duration=60.0, seed=3, size_m=480.0
)


class TestResolve:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(EPOCH_TRACE_ENV, raising=False)
        assert resolve_epoch_trace() is False
        assert maybe_epoch_tracer(0, 2, 10) is None

    def test_truthy_values(self):
        assert resolve_epoch_trace("1") is True
        assert resolve_epoch_trace("on") is True
        assert resolve_epoch_trace("0") is False
        assert resolve_epoch_trace("sometimes") is False

    def test_env_gate(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        monkeypatch.setenv(EPOCH_TRACE_ENV, "1")
        tracer = maybe_epoch_tracer(1, 4, 12)
        assert isinstance(tracer, EpochTracer)
        assert tracer.path == tmp_path / "telemetry" / "epochs-1.jsonl"


class TestTracerFiles:
    def _tracer(self, tmp_path, shard_id=0):
        return EpochTracer(
            shard_id, 2, 5, base_dir=tmp_path, clock=lambda: 100.0
        )

    def test_records_read_back(self, tmp_path):
        tracer = self._tracer(tmp_path)
        tracer.record(0, "a", 0.5, 0.0, {"m": 3, "o": 0}, {1: [("m",), ("m",)]})
        tracer.record(0, "b", 0.25, 0.1, {"f": 1, "p": 2}, {})
        records = read_epoch_records(tracer.path)
        assert [r["phase"] for r in records] == ["a", "b"]
        first = records[0]
        assert first["shard"] == 0 and first["shards"] == 2
        assert first["epochs"] == 5
        assert first["in"] == {"m": 3}  # zero-count kinds dropped
        assert first["out"] == {"1": 2}  # JSON stringifies dest keys
        assert first["out_bytes"] > 0
        assert records[1]["barrier_s"] == 0.1

    def test_stale_file_rotated_on_first_record(self, tmp_path):
        path = epoch_file(0, tmp_path)
        path.parent.mkdir(parents=True)
        path.write_text('{"epoch": 9, "phase": "b", "stale": true}\n')
        tracer = self._tracer(tmp_path)
        tracer.record(0, "a", 0.1, 0.0, {}, {})
        records = read_epoch_records(path)
        assert len(records) == 1
        assert records[0]["epoch"] == 0
        assert path.with_name(path.name + ".old").exists()

    def test_torn_lines_skipped(self, tmp_path):
        tracer = self._tracer(tmp_path)
        tracer.record(0, "a", 0.1, 0.0, {}, {})
        with open(tracer.path, "a") as fh:
            fh.write('{"epoch": 1, "phase": "b", "wall')
        assert len(read_epoch_records(tracer.path)) == 1

    def test_load_epoch_dir(self, tmp_path):
        self._tracer(tmp_path, 0).record(0, "a", 0.1, 0.0, {}, {})
        self._tracer(tmp_path, 1).record(0, "a", 0.2, 0.0, {}, {})
        (tmp_path / "telemetry" / "epochs-junk.jsonl").write_text("{}\n")
        by_shard = load_epoch_dir(tmp_path / "telemetry")
        assert sorted(by_shard) == [0, 1]

    def test_load_epoch_dir_missing(self, tmp_path):
        assert load_epoch_dir(tmp_path) == {}


class TestShardedRunTracing:
    def test_run_produces_spans_per_shard(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        result = run_sharded(
            SCENARIO, shards=2, mode="inline", collect_states=False,
            epoch_trace=True,
        )
        by_shard = load_epoch_dir(tmp_path / "telemetry")
        assert sorted(by_shard) == [0, 1]
        for records in by_shard.values():
            # two phase records per epoch, a/b alternating
            assert len(records) == 2 * result.epochs
            assert [r["phase"] for r in records[:2]] == ["a", "b"]
            assert all(r["wall_s"] >= 0.0 for r in records)

    def test_off_means_no_files(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        monkeypatch.delenv(EPOCH_TRACE_ENV, raising=False)
        run_sharded(SCENARIO, shards=2, mode="inline", collect_states=False)
        assert load_epoch_dir(tmp_path / "telemetry") == {}


def _synthetic_records(shards=2, epochs=3, phase_s=0.5):
    """Deterministic epoch records with every shard handing to the other."""
    by_shard = {}
    for shard in range(shards):
        t = 1000.0 + shard * 0.01
        records = []
        for epoch in range(epochs):
            for phase in ("a", "b"):
                t += phase_s
                records.append({
                    "wall": t,
                    "shard": shard,
                    "shards": shards,
                    "epoch": epoch,
                    "epochs": epochs,
                    "phase": phase,
                    "wall_s": phase_s,
                    "barrier_s": 0.05 if epoch else 0.0,
                    "in": {"m": 1},
                    "out": {str(1 - shard): 4},
                    "out_bytes": 64,
                })
        by_shard[shard] = records
    return by_shard


class TestChromeExport:
    def test_doc_validates(self):
        doc = epoch_trace_doc(_synthetic_records())
        validate_chrome_trace(doc)

    def test_one_track_per_shard(self):
        doc = epoch_trace_doc(_synthetic_records(shards=3))
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert names == ["shard 0", "shard 1", "shard 2"]

    def test_phase_and_barrier_spans(self):
        doc = epoch_trace_doc(_synthetic_records(epochs=2))
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        phase = [e for e in spans if e.get("cat") == "phase"]
        barrier = [e for e in spans if e.get("cat") == "barrier"]
        # 2 shards x 2 epochs x 2 phases; barriers only once epoch > 0
        assert len(phase) == 8
        assert len(barrier) == 4
        assert {e["name"] for e in phase} == {
            "epoch 0 A", "epoch 0 B", "epoch 1 A", "epoch 1 B"
        }
        assert all(e["dur"] > 0 for e in spans)

    def test_flow_arrows_pair_up_across_shards(self):
        doc = epoch_trace_doc(_synthetic_records())
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
        starts = [e for e in flows if e["ph"] == "s"]
        ends = [e for e in flows if e["ph"] == "f"]
        assert len(starts) == len(ends) > 0
        assert {e["id"] for e in starts} == {e["id"] for e in ends}
        by_id = {e["id"]: e for e in ends}
        for s in starts:
            # every arrow lands on the *other* shard's track
            assert by_id[s["id"]]["tid"] != s["tid"]

    def test_dangling_handoff_dropped(self):
        """A batch aimed at an epoch that never ran (the tail of a
        truncated file) must not produce a one-ended flow arrow."""
        records = _synthetic_records(epochs=1)
        # phase b of epoch 0 hands to epoch 1 phase a, which doesn't exist
        doc = epoch_trace_doc(records)
        validate_chrome_trace(doc)
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
        # only the a->b arrows within epoch 0 survive
        assert all(e["name"] == "handoff" for e in flows)
        starts = [e for e in flows if e["ph"] == "s"]
        ends = [e for e in flows if e["ph"] == "f"]
        assert len(starts) == len(ends) == 2

    def test_write_epoch_trace(self, tmp_path):
        path = write_epoch_trace(
            _synthetic_records(), tmp_path / "sub" / "trace.json"
        )
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)
        assert doc["displayTimeUnit"] == "ms"


class TestShardTraceCli:
    def test_export_and_validate(self, tmp_path, capsys):
        for shard, records in _synthetic_records().items():
            path = epoch_file(shard, tmp_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "w") as fh:
                for rec in records:
                    fh.write(json.dumps(rec) + "\n")
        out_path = tmp_path / "epoch_trace.json"
        rc = main([
            "obs", "shard-trace",
            "--dir", str(tmp_path / "telemetry"),
            "--out", str(out_path),
        ])
        assert rc == 0
        assert "2 shard(s)" in capsys.readouterr().out
        validate_chrome_trace(json.loads(out_path.read_text()))

    def test_no_spans_is_an_error(self, tmp_path, capsys):
        rc = main([
            "obs", "shard-trace", "--dir", str(tmp_path),
            "--out", str(tmp_path / "t.json"),
        ])
        assert rc == 1
        assert "no epochs-" in capsys.readouterr().err


@pytest.mark.parametrize("shards", [1, 2])
def test_tracing_never_perturbs_digest(tmp_path, monkeypatch, shards):
    """Cheap single-run mirror of the golden invariance contract: the
    same scenario digests identically with tracing on and off."""
    monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
    plain = run_sharded(
        SCENARIO, shards=shards, mode="inline", collect_states=False
    )
    traced = run_sharded(
        SCENARIO, shards=shards, mode="inline", collect_states=False,
        epoch_trace=True,
    )
    assert traced.digest() == plain.digest()
