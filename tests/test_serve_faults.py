"""Fault discipline of the serving layer.

Overload and crash behaviour, pinned by test: a full ingress queue
sheds *probes* (counted, never silent) but always backpressures
feedback; a crashing worker restarts with all session state intact and
salvages its in-flight event; a core-level failure is counted and
released so the stream never deadlocks; and malformed trace lines are
skipped with the same torn-line discipline ``repro.obs.epochs`` applies
to shard telemetry.
"""

import asyncio

import pytest

from repro.serve.core import RankingCore
from repro.serve.events import FeedbackEvent, ProbeEvent, decisions_digest
from repro.serve.service import RankingService, run_stream, serve_stream
from repro.serve.trace import load_trace
from repro.serve.workload import client_mac, synthetic_stream


@pytest.fixture
def core(city, wigle):
    return RankingCore.seeded(
        wigle, city.heatmap, city.venues[0].region.center, seed=3
    )


def _probes(n, start=0.0):
    return [
        ProbeEvent(client_mac(i % 4), round(start + 0.1 * i, 6))
        for i in range(n)
    ]


class TestShedding:
    def test_queue_full_sheds_probes_and_counts(self, core):
        """Probes beyond the bound are dropped and show up in shed_total."""

        async def scenario():
            service = RankingService(core, workers=2, queue_max=4, shed=True)
            accepted = []
            # Workers not started yet: the queue fills and stays full.
            for event in _probes(10):
                accepted.append(await service.submit(event))
            await service.start()
            await service.drain()
            await service.stop()
            service.finish()
            return service, accepted

        service, accepted = asyncio.run(scenario())
        assert accepted == [True] * 4 + [False] * 6
        assert service.shed_total() == 6
        assert service.metrics.counter_value(
            "serve.shed_total", type="broadcast"
        ) == 6
        # Only the accepted events reached the core.
        assert core.events_handled == 4

    def test_feedback_backpressures_never_sheds(self, core):
        """Feedback waits for queue space instead of being dropped."""

        async def scenario():
            service = RankingService(core, workers=1, queue_max=2, shed=True)
            for event in _probes(2):
                await service.submit(event)
            # Queue full: a probe would shed, feedback must block.
            fb = FeedbackEvent(client_mac(0), 9.0, "any-net")
            submit_task = asyncio.ensure_future(service.submit(fb))
            await asyncio.sleep(0.01)
            assert not submit_task.done(), "feedback must backpressure"
            await service.start()
            assert await submit_task is True
            await service.drain()
            await service.stop()
            service.finish()
            return service

        service = asyncio.run(scenario())
        assert service.shed_total() == 0
        assert (
            service.metrics.counter_value(
                "serve.events_total", type="feedback"
            )
            == 1
        )


class TestWorkerCrashes:
    def test_restart_preserves_state_and_salvages_inflight(self, core, city, wigle):
        """A transport-stage crash reapplies the event after restart.

        The decision stream must equal the fault-free run's: the crash
        happens before the core saw the event, so the supervisor
        re-applies it and nothing — especially feedback — is lost.
        """
        events = synthetic_stream(
            4, 60, seed=5, ssid_pool=["a-net", "b-net"],
            direct_share=0.2, feedback_share=0.2,
        )
        reference = run_stream(
            RankingCore.seeded(
                wigle, city.heatmap, city.venues[0].region.center, seed=3
            ),
            events,
            workers=3,
        )

        crashed = []

        def fault_hook(wid, event):
            # Crash exactly once, on the first feedback event seen.
            if not crashed and isinstance(event, FeedbackEvent):
                crashed.append(event)
                raise RuntimeError("injected transport fault")

        service = RankingService(core, workers=3, fault_hook=fault_hook)
        asyncio.run(serve_stream(service, events))
        assert crashed, "fault hook never fired"
        assert service.metrics.counter_value("serve.worker_restarts") == 1
        assert service.metrics.counter_value("serve.events_failed") == 0
        assert decisions_digest(service.decisions) == decisions_digest(
            reference.decisions
        )
        # All events were applied despite the crash: state is intact.
        assert core.events_handled == len(events)

    def test_mid_apply_failure_counted_and_stream_continues(self, core):
        """A core-level failure loses one event, never the stream."""
        events = _probes(20)
        poisoned = events[7]
        original_handle = core.handle

        def flaky_handle(event):
            if event is poisoned:
                raise RuntimeError("injected core fault")
            return original_handle(event)

        core.handle = flaky_handle
        service = RankingService(core, workers=2)
        asyncio.run(serve_stream(service, events))
        assert service.metrics.counter_value("serve.events_failed") == 1
        assert service.metrics.counter_value("serve.worker_restarts") == 1
        # The other 19 events were all committed, in order.
        assert core.events_handled == len(events) - 1
        assert len(service.decisions) > 0


class TestMalformedTraces:
    def test_torn_lines_skipped_not_fatal(self, core, tmp_path):
        """Garbage lines are counted and skipped, parse never raises."""
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"ts": 1.0, "mac": "02:00:00:00:00:01", "ssid": ""}\n'
            '{"ts": 2.0, "mac": "02:00:00:00:00:01", "ssi\n'  # torn write
            "not json at all\n"
            '{"ts": "three", "mac": "02:00:00:00:00:01", "ssid": ""}\n'
            '{"ts": 4.0, "ssid": "x", "type": "probe-req"}\n'  # no MAC
            '{"ts": 5.0, "mac": "02:00:00:00:00:02", "type": "assoc"}\n'
            '{"ts": 6.0, "mac": "02:00:00:00:00:02", "ssid": ""}\n'
        )
        events, stats = load_trace(path)
        assert stats.lines == 7
        assert stats.parsed == len(events) == 2
        assert stats.skipped == 5
        assert [line for line, _ in stats.reasons] == [2, 3, 4, 5, 6]
        # The surviving events still serve.
        service = run_stream(core, events, workers=2)
        assert len(service.decisions) == 2
