"""Shard fault tolerance: checkpoint, crash, recover, same digest.

The contract under test, stated once: a process-mode sharded run that
loses a shard mid-flight — killed, hung, or handing off garbage — must
recover from the last consistent epoch barrier and finish with a
``shardsim.*`` digest **bit-identical** to an uninterrupted run.  The
machinery (epoch-barrier checkpoints, crash detection, deterministic
replay) lives in :mod:`repro.sim.shards.checkpoint` and
:mod:`repro.sim.shards.engine`; the injectors in
:mod:`repro.faults.shards`.
"""

import json
import pathlib
import time

import pytest

from repro.faults.plan import FaultPlan
from repro.faults.shards import (
    SHARD_CRASH_EXIT_CODE,
    InjectedShardCrash,
    ShardFaultParams,
    target_shard,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import (
    OPS_EVENTS_FILE,
    append_ops_event,
    fleet_snapshot,
    ops_events_path,
    read_ops_events,
    render_top,
)
from repro.sim.shards import ShardScenario, run_sharded
from repro.sim.shards.checkpoint import (
    CKPT_EVERY_ENV,
    CheckpointError,
    checkpoint_dir,
    load_manifest,
    read_blob,
    resolve_ckpt_every,
    write_blob,
)
from repro.sim.shards.engine import (
    MAX_RECOVERIES_ENV,
    PHASE_TIMEOUT_ENV,
    ShardedCitySim,
    resolve_max_recoveries,
    resolve_phase_timeout,
)
from repro.sim.shards.handoff import CorruptHandoffError
from repro.sim.shards.shard import ShardRuntime

# 36 epochs (180 s / 5 s), small enough for process-mode tests, big
# enough that a crash at epoch 18 replays real barriers.
SCENARIO = ShardScenario(
    stations=80, sensors=10, duration=180.0, seed=13, size_m=360.0
)
CRASH_EPOCH = 18
CKPT_EVERY = 6

_ENV_KEYS = (
    "REPRO_ARTIFACT_DIR",
    "REPRO_HEARTBEAT",
    "REPRO_EPOCH_TRACE",
    CKPT_EVERY_ENV,
    PHASE_TIMEOUT_ENV,
    MAX_RECOVERIES_ENV,
)


@pytest.fixture()
def artifact_dir(tmp_path, monkeypatch):
    for key in _ENV_KEYS:
        monkeypatch.delenv(key, raising=False)
    monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
    return tmp_path


@pytest.fixture(scope="module")
def clean_digest():
    """The uninterrupted baseline every recovery test must reproduce."""
    return run_sharded(SCENARIO, shards=4, mode="inline").digest()


def _crash_plan(**kwargs):
    kwargs.setdefault("crash_epoch", CRASH_EPOCH)
    return FaultPlan(seed=SCENARIO.seed, shard_faults=ShardFaultParams(**kwargs))


# -- knob resolution ---------------------------------------------------------


class TestKnobs:
    def test_ckpt_every(self, monkeypatch):
        monkeypatch.delenv(CKPT_EVERY_ENV, raising=False)
        assert resolve_ckpt_every() == 0
        assert resolve_ckpt_every(5) == 5
        monkeypatch.setenv(CKPT_EVERY_ENV, "9")
        assert resolve_ckpt_every() == 9
        assert resolve_ckpt_every(2) == 2
        with pytest.raises(ValueError):
            resolve_ckpt_every(-1)

    def test_phase_timeout(self, monkeypatch):
        monkeypatch.delenv(PHASE_TIMEOUT_ENV, raising=False)
        assert resolve_phase_timeout() is None
        monkeypatch.setenv(PHASE_TIMEOUT_ENV, "2.5")
        assert resolve_phase_timeout() == 2.5
        with pytest.raises(ValueError):
            resolve_phase_timeout(0)

    def test_max_recoveries(self, monkeypatch):
        monkeypatch.delenv(MAX_RECOVERIES_ENV, raising=False)
        assert resolve_max_recoveries() == 3
        monkeypatch.setenv(MAX_RECOVERIES_ENV, "0")
        assert resolve_max_recoveries() == 0
        with pytest.raises(ValueError):
            resolve_max_recoveries(-2)

    def test_fault_params_validation(self):
        with pytest.raises(ValueError):
            ShardFaultParams(crash_epoch=-1)
        with pytest.raises(ValueError):
            ShardFaultParams(corrupt_epoch=3, corrupt_kind="nonsense")
        assert ShardFaultParams().empty
        assert not ShardFaultParams(stall_epoch=2, stall_s=5.0).empty

    def test_target_shard_deterministic(self):
        params = ShardFaultParams(crash_epoch=1)
        assert target_shard(params, 13, 4) == target_shard(params, 13, 4)
        pinned = ShardFaultParams(crash_epoch=1, shard=6)
        assert target_shard(pinned, 13, 4) == 2

    def test_fault_plan_from_dict(self):
        plan = FaultPlan.from_dict(
            {"seed": 7, "shard_faults": {"crash_epoch": 12, "shard": 1}}
        )
        assert plan.shard_faults.crash_epoch == 12
        assert plan.shard_faults.shard == 1
        assert not plan.empty


# -- checkpoint primitives ---------------------------------------------------


class TestCheckpointBlobs:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        payload = {"epoch": 4, "rows": [(1.0, 2.0)], "n": 7}
        nbytes = write_blob(path, payload)
        assert nbytes == path.stat().st_size
        assert read_blob(path) == payload

    def test_corruption_detected(self, tmp_path):
        path = tmp_path / "blob.bin"
        write_blob(path, {"x": 1})
        blob = bytearray(path.read_bytes())
        blob[9] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="CRC"):
            read_blob(path)
        path.write_bytes(b"junk")
        with pytest.raises(CheckpointError, match="magic"):
            read_blob(path)
        with pytest.raises(CheckpointError, match="unreadable"):
            read_blob(tmp_path / "absent.bin")

    def test_registry_snapshot_restores_in_place(self):
        reg = MetricsRegistry()
        reg.inc("shardsim.hits", 3)
        snap = reg.to_dict()
        reg.inc("shardsim.hits", 10)
        assert reg.load_snapshot(snap) is reg
        assert reg.to_dict()["counters"]["shardsim.hits"] == 3


class TestRuntimeRoundtrip:
    def test_checkpoint_restore_resumes_identically(self, artifact_dir):
        """Step one shard to a barrier, checkpoint, restore into a fresh
        runtime, and finish both — the finalize payloads must match."""
        scenario = ShardScenario(
            stations=40, sensors=6, duration=120.0, seed=5, size_m=360.0
        )

        def step(rt, epoch, offers):
            """One epoch with the coordinator's routing loop, single
            shard: phase A records feed phase B, offers buffer an epoch."""
            last = epoch == rt.epochs - 1
            recs = rt.run_phase_a(epoch, [], offers, last).get(0, [])
            probes = [r for r in recs if r[0] == "p"]
            feeds = [r for r in recs if r[0] == "f"]
            return rt.run_phase_b(epoch, feeds, probes).get(0, [])

        original = ShardRuntime(scenario, 0, 1)
        offers = []
        for epoch in range(10):
            offers = step(original, epoch, offers)
        info = original.write_checkpoint(10, artifact_dir)
        assert info["bytes"] > 0
        pending_offers = list(offers)

        restored = ShardRuntime(scenario, 0, 1)
        restored.restore_file(pathlib.Path(info["path"]))
        assert restored.epochs_done == 10
        payloads = []
        for rt in (original, restored):
            offers = list(pending_offers)
            for epoch in range(10, rt.epochs):
                offers = step(rt, epoch, offers)
            payloads.append(rt.finalize(collect_states=True))
        a, b = payloads
        assert a["walker_rows"] == b["walker_rows"]
        assert a["hunter_states"] == b["hunter_states"]
        assert a["summary"] == b["summary"]
        # Timers and shardops accounting legitimately differ (wall clock,
        # and the original paid for the checkpoint write); the workload
        # space must not.
        def sim_counters(payload):
            return {
                k: v
                for k, v in payload["metrics"]["counters"].items()
                if k.startswith("shardsim.")
            }

        assert sim_counters(a) == sim_counters(b)

    def test_restore_rejects_mismatched_runtime(self, artifact_dir):
        scenario = ShardScenario(
            stations=40, sensors=6, duration=120.0, seed=5, size_m=360.0
        )
        rt = ShardRuntime(scenario, 0, 1)
        rt.run_phase_a(0, [], [])
        rt.run_phase_b(0, [], [])
        info = rt.write_checkpoint(1, artifact_dir)
        other = ShardRuntime(
            ShardScenario(
                stations=40, sensors=6, duration=120.0, seed=6, size_m=360.0
            ),
            0,
            1,
        )
        with pytest.raises(CheckpointError, match="seed"):
            other.restore_file(pathlib.Path(info["path"]))


# -- observe-only invariance -------------------------------------------------


class TestCheckpointInvariance:
    def test_inline_checkpointing_moves_no_digest(
        self, artifact_dir, clean_digest
    ):
        result = run_sharded(
            SCENARIO, shards=4, mode="inline", ckpt_every=CKPT_EVERY
        )
        assert result.digest() == clean_digest
        manifest = load_manifest(checkpoint_dir())
        assert manifest is not None
        assert manifest["epoch"] == 30  # last barrier at 6-epoch cadence
        assert manifest["shards"] == 4
        counters = result.metrics["counters"]
        assert counters["shardops.ckpt.barriers"] == 5
        assert counters["shardops.ckpt.writes"] == 20
        # A clean checkpointed run writes no anomaly events.
        assert not ops_events_path().exists()


# -- crash recovery ----------------------------------------------------------


class TestCrashRecovery:
    def test_recovers_bit_identical_from_checkpoint(
        self, artifact_dir, clean_digest
    ):
        result = run_sharded(
            SCENARIO,
            shards=4,
            mode="process",
            faults=_crash_plan(),
            ckpt_every=CKPT_EVERY,
        )
        assert result.digest() == clean_digest
        counters = result.metrics["counters"]
        assert counters["shardops.recovery.crashes"] == 1
        assert counters["shardops.recovery.respawns"] == 4
        # Barrier at epoch 18 commits just before the crash fires at
        # phase A of 18, so the rollback is zero epochs.
        assert counters["shardops.recovery.rollback_epochs"] == 0
        events = read_ops_events(ops_events_path())
        kinds = [e["kind"] for e in events]
        assert "shard.crash" in kinds and "shard.respawn" in kinds
        crash = next(e for e in events if e["kind"] == "shard.crash")
        assert crash["exitcode"] == SHARD_CRASH_EXIT_CODE
        respawn = next(e for e in events if e["kind"] == "shard.respawn")
        assert respawn["from_checkpoint"] is True

    def test_recovers_from_scratch_without_checkpoints(
        self, artifact_dir, clean_digest
    ):
        result = run_sharded(
            SCENARIO, shards=4, mode="process", faults=_crash_plan()
        )
        assert result.digest() == clean_digest
        counters = result.metrics["counters"]
        assert counters["shardops.recovery.crashes"] == 1
        assert counters["shardops.recovery.rollback_epochs"] == CRASH_EPOCH
        respawn = next(
            e
            for e in read_ops_events(ops_events_path())
            if e["kind"] == "shard.respawn"
        )
        assert respawn["from_checkpoint"] is False

    def test_stalled_shard_is_detected_and_recovered(
        self, artifact_dir, monkeypatch, clean_digest
    ):
        monkeypatch.setenv(PHASE_TIMEOUT_ENV, "1.0")
        result = run_sharded(
            SCENARIO,
            shards=4,
            mode="process",
            faults=_crash_plan(crash_epoch=None, stall_epoch=CRASH_EPOCH,
                               stall_s=30.0),
            ckpt_every=CKPT_EVERY,
        )
        assert result.digest() == clean_digest
        assert result.metrics["counters"]["shardops.recovery.crashes"] == 1
        crash = next(
            e
            for e in read_ops_events(ops_events_path())
            if e["kind"] == "shard.crash"
        )
        assert "deadline" in crash["reason"]

    @pytest.mark.parametrize("kind", ["truncate", "mangle"])
    def test_corrupt_handoff_is_detected_and_recovered(
        self, artifact_dir, kind, clean_digest
    ):
        result = run_sharded(
            SCENARIO,
            shards=4,
            mode="process",
            faults=_crash_plan(crash_epoch=None, corrupt_epoch=CRASH_EPOCH,
                               corrupt_kind=kind),
            ckpt_every=CKPT_EVERY,
        )
        assert result.digest() == clean_digest
        assert result.metrics["counters"]["shardops.recovery.crashes"] == 1
        crash = next(
            e
            for e in read_ops_events(ops_events_path())
            if e["kind"] == "shard.crash"
        )
        assert "corrupt handoff" in crash["reason"]

    def test_recovery_budget_exhausted(self, artifact_dir, monkeypatch):
        monkeypatch.setenv(MAX_RECOVERIES_ENV, "1")
        with pytest.raises(RuntimeError, match="recovery budget exhausted"):
            run_sharded(
                SCENARIO,
                shards=4,
                mode="process",
                faults=_crash_plan(crash_incarnations=5),
                ckpt_every=CKPT_EVERY,
            )

    def test_inline_crash_raises(self, artifact_dir):
        with pytest.raises(InjectedShardCrash, match="no recovery"):
            run_sharded(SCENARIO, shards=4, mode="inline", faults=_crash_plan())

    def test_inline_corrupt_raises(self, artifact_dir):
        with pytest.raises(CorruptHandoffError):
            run_sharded(
                SCENARIO,
                shards=4,
                mode="inline",
                faults=_crash_plan(crash_epoch=None, corrupt_epoch=4),
            )


# -- shutdown escalation -----------------------------------------------------


class _StubProc:
    def __init__(self, alive_polls, exitcode=-15):
        self._alive_polls = alive_polls
        self.exitcode = exitcode
        self.calls = []

    def is_alive(self):
        if self._alive_polls > 0:
            self._alive_polls -= 1
            return True
        return False

    def join(self, timeout=None):
        self.calls.append(("join", timeout))

    def terminate(self):
        self.calls.append(("terminate", None))

    def kill(self):
        self.calls.append(("kill", None))


class TestShutdownEscalation:
    def test_clean_join_leaves_no_events(self, artifact_dir):
        proc = _StubProc(alive_polls=0)
        ShardedCitySim._shutdown_procs([proc], [], join_timeout_s=0.01)
        assert ("terminate", None) not in proc.calls
        assert not ops_events_path().exists()

    def test_terminate_escalation_is_evented(self, artifact_dir):
        proc = _StubProc(alive_polls=1)
        ShardedCitySim._shutdown_procs([proc], [], join_timeout_s=0.01)
        assert ("terminate", None) in proc.calls
        assert ("kill", None) not in proc.calls
        (event,) = read_ops_events(ops_events_path())
        assert event["kind"] == "shard.shutdown_kill"
        assert event["escalation"] == "terminate"

    def test_kill_escalation_is_evented(self, artifact_dir):
        proc = _StubProc(alive_polls=2, exitcode=-9)
        ShardedCitySim._shutdown_procs([proc], [], join_timeout_s=0.01)
        assert ("kill", None) in proc.calls
        (event,) = read_ops_events(ops_events_path())
        assert event["escalation"] == "kill"
        assert event["exitcode"] == -9


# -- pipe-failure reporting in the shard worker ------------------------------


class _BrokenConn:
    """recv serves one phase-A command, every send raises."""

    def __init__(self):
        self.sends = 0

    def recv(self):
        return ("a", 0, [], [], False)

    def send(self, payload):
        self.sends += 1
        raise BrokenPipeError("pipe gone")

    def close(self):
        pass


class TestWorkerPipeFailure:
    def test_pipe_error_is_evented_and_reraised(self, artifact_dir):
        from repro.sim.shards.engine import _shard_worker

        scenario = ShardScenario(
            stations=20, sensors=4, duration=30.0, seed=3, size_m=360.0
        )
        conn = _BrokenConn()
        with pytest.raises(BrokenPipeError):
            _shard_worker(conn, scenario, 0, 1, None, False, False)
        # Both the "ok" reply and the "err" report failed...
        assert conn.sends == 2
        # ...so the worker left the breadcrumb the coordinator can't get.
        (event,) = read_ops_events(ops_events_path())
        assert event["kind"] == "shard.pipe_error"
        assert event["shard"] == 0


# -- recovery-aware observability --------------------------------------------


class TestRecoveryObservability:
    def _stalled_shard_file(self, telemetry, now):
        telemetry.mkdir(parents=True, exist_ok=True)
        records = [
            {"wall": now - 120.0, "spec": "shard 1/4", "sim_time": 0.0,
             "fraction": 0.0, "hits": 0, "done": False, "epoch": 0,
             "epochs": 36, "seq": i}
            for i in range(3)
        ]
        with open(telemetry / "shard-1.jsonl", "w") as fh:
            for rec in records:
                fh.write(json.dumps(rec) + "\n")

    def test_zero_epoch_stall_suppressed_during_recovery(self, tmp_path):
        now = time.time()
        telemetry = tmp_path / "telemetry"
        self._stalled_shard_file(telemetry, now)
        append_ops_event(
            "shard.crash", base=tmp_path, shard=1, epoch=18, phase="a",
            reason="process died", exitcode=SHARD_CRASH_EXIT_CODE,
        )
        append_ops_event(
            "shard.respawn", base=tmp_path, shards=4, epoch=18,
            incarnation=1, from_checkpoint=True,
        )
        doc = fleet_snapshot(telemetry, stall_after_s=30.0, now=now)
        (row,) = doc["shards"]
        assert row["stalled"] is False
        assert row["recovering"] is True
        assert doc["recovery"]["active"] is True
        assert doc["recovery"]["crashes"] == 1
        assert doc["recovery"]["crashes_by_shard"] == {"1": 1}
        assert doc["health"]["healthy"] is True
        rendered = render_top(doc)
        assert "recoveries 1 (1 crash(es), in flight)" in rendered

    def test_stale_recovery_does_not_suppress_stall(self, tmp_path):
        now = time.time()
        telemetry = tmp_path / "telemetry"
        self._stalled_shard_file(telemetry, now)
        with open(telemetry / OPS_EVENTS_FILE, "w") as fh:
            fh.write(json.dumps({
                "wall": now - 3600.0, "kind": "shard.crash", "shard": 1,
            }) + "\n")
        doc = fleet_snapshot(telemetry, stall_after_s=30.0, now=now)
        (row,) = doc["shards"]
        assert row["stalled"] is True
        assert doc["recovery"]["active"] is False
        assert doc["health"]["healthy"] is False
