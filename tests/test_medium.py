"""Tests for the radio medium (repro.dot11.medium)."""

import pytest

from repro.dot11.capabilities import Security
from repro.dot11.frames import ProbeRequest, ProbeResponse
from repro.dot11.medium import Medium
from repro.geo.point import Point
from repro.sim.simulation import Simulation
from repro.util.units import PROBE_RESPONSE_AIRTIME_S


class FakeStation:
    """Fixed or scripted-motion station recording what it receives."""

    def __init__(self, mac, position, velocity=(0.0, 0.0)):
        self.mac = mac
        self._origin = position
        self._velocity = velocity
        self.received = []

    def position_at(self, time):
        return Point(
            self._origin.x + self._velocity[0] * time,
            self._origin.y + self._velocity[1] * time,
        )

    def receive(self, frame, time):
        self.received.append((frame, time))


def _setup(fidelity="frame", loss_rate=0.0):
    sim = Simulation(seed=3)
    medium = Medium(sim, fidelity=fidelity, loss_rate=loss_rate)
    return sim, medium


class TestAttachment:
    def test_attach_detach(self):
        sim, medium = _setup()
        st = FakeStation("02:00:00:00:00:01", Point(0, 0))
        medium.attach(st, 50.0)
        assert medium.is_attached(st.mac)
        assert medium.station_count == 1
        medium.detach(st.mac)
        assert not medium.is_attached(st.mac)

    def test_detach_unknown_is_noop(self):
        _, medium = _setup()
        medium.detach("02:aa:aa:aa:aa:aa")

    def test_bad_range_rejected(self):
        sim, medium = _setup()
        with pytest.raises(ValueError):
            medium.attach(FakeStation("02:00:00:00:00:01", Point(0, 0)), 0.0)

    def test_bad_fidelity_rejected(self):
        sim = Simulation(seed=0)
        with pytest.raises(ValueError):
            Medium(sim, fidelity="psychic")

    def test_bad_loss_rate_rejected(self):
        sim = Simulation(seed=0)
        with pytest.raises(ValueError):
            Medium(sim, loss_rate=1.5)
        with pytest.raises(ValueError):
            Medium(sim, loss_rate=-0.1)

    def test_total_blackout_allowed(self):
        # loss_rate=1.0 is a legal, useful degenerate case: the channel
        # exists but delivers nothing.
        sim, medium = _setup(loss_rate=1.0)
        a = FakeStation("02:00:00:00:00:01", Point(0, 0))
        b = FakeStation("02:00:00:00:00:02", Point(10, 0))
        medium.attach(a, 50.0)
        medium.attach(b, 50.0)
        medium.transmit(a, ProbeRequest(a.mac))
        sim.run(1.0)
        assert b.received == []
        assert medium.frames_delivered == 0


class TestBroadcastPropagation:
    def test_in_range_station_receives(self):
        sim, medium = _setup()
        a = FakeStation("02:00:00:00:00:01", Point(0, 0))
        b = FakeStation("02:00:00:00:00:02", Point(30, 0))
        medium.attach(a, 50.0)
        medium.attach(b, 50.0)
        medium.transmit(a, ProbeRequest(a.mac))
        sim.run(1.0)
        assert len(b.received) == 1

    def test_out_of_range_station_does_not_receive(self):
        sim, medium = _setup()
        a = FakeStation("02:00:00:00:00:01", Point(0, 0))
        far = FakeStation("02:00:00:00:00:03", Point(60, 0))
        medium.attach(a, 50.0)
        medium.attach(far, 50.0)
        medium.transmit(a, ProbeRequest(a.mac))
        sim.run(1.0)
        assert far.received == []

    def test_sender_does_not_hear_itself(self):
        sim, medium = _setup()
        a = FakeStation("02:00:00:00:00:01", Point(0, 0))
        medium.attach(a, 50.0)
        medium.transmit(a, ProbeRequest(a.mac))
        sim.run(1.0)
        assert a.received == []

    def test_range_is_senders_range(self):
        sim, medium = _setup()
        quiet = FakeStation("02:00:00:00:00:01", Point(0, 0))
        loud = FakeStation("02:00:00:00:00:02", Point(40, 0))
        medium.attach(quiet, 10.0)
        medium.attach(loud, 100.0)
        medium.transmit(quiet, ProbeRequest(quiet.mac))
        medium.transmit(loud, ProbeRequest(loud.mac))
        sim.run(1.0)
        assert quiet.received and not loud.received

    def test_delivery_delayed_by_airtime(self):
        sim, medium = _setup()
        a = FakeStation("02:00:00:00:00:01", Point(0, 0))
        b = FakeStation("02:00:00:00:00:02", Point(10, 0))
        medium.attach(a, 50.0)
        medium.attach(b, 50.0)
        medium.transmit(a, ProbeRequest(a.mac), airtime=0.005)
        sim.run(1.0)
        assert b.received[0][1] == pytest.approx(0.005)


class TestUnicast:
    def test_only_addressee_receives(self):
        sim, medium = _setup()
        a = FakeStation("02:00:00:00:00:01", Point(0, 0))
        b = FakeStation("02:00:00:00:00:02", Point(10, 0))
        c = FakeStation("02:00:00:00:00:03", Point(10, 10))
        for st in (a, b, c):
            medium.attach(st, 50.0)
        medium.transmit(a, ProbeResponse(a.mac, b.mac, "X", Security.OPEN))
        sim.run(1.0)
        assert len(b.received) == 1
        assert c.received == []

    def test_unknown_addressee_dropped(self):
        sim, medium = _setup()
        a = FakeStation("02:00:00:00:00:01", Point(0, 0))
        medium.attach(a, 50.0)
        medium.transmit(a, ProbeResponse(a.mac, "02:ff:ff:ff:ff:ff", "X"))
        sim.run(1.0)  # must not raise


class TestMotionAtDeliveryTime:
    def test_walker_leaving_range_misses_frame(self):
        sim, medium = _setup()
        ap = FakeStation("02:00:00:00:00:01", Point(0, 0))
        # Walker starts at 49 m and sprints away at 100 m/s (contrived
        # but makes the point: recipients resolve at delivery time).
        walker = FakeStation("02:00:00:00:00:02", Point(49, 0), velocity=(100, 0))
        medium.attach(ap, 50.0)
        medium.attach(walker, 50.0)
        medium.transmit(ap, ProbeRequest(ap.mac), airtime=0.5)
        sim.run(1.0)
        assert walker.received == []

    def test_sender_departed_before_delivery(self):
        sim, medium = _setup()
        a = FakeStation("02:00:00:00:00:01", Point(0, 0))
        b = FakeStation("02:00:00:00:00:02", Point(10, 0))
        medium.attach(a, 50.0)
        medium.attach(b, 50.0)
        medium.transmit(a, ProbeRequest(a.mac), airtime=0.5)
        medium.detach(a.mac)
        sim.run(1.0)
        assert b.received == []


class TestResponseBursts:
    def _burst(self, n, src, dst):
        return [ProbeResponse(src, dst, f"ssid-{i}") for i in range(n)]

    def test_frame_fidelity_spaces_deliveries(self):
        sim, medium = _setup(fidelity="frame")
        ap = FakeStation("02:00:00:00:00:01", Point(0, 0))
        cl = FakeStation("02:00:00:00:00:02", Point(10, 0))
        medium.attach(ap, 50.0)
        medium.attach(cl, 50.0)
        medium.transmit_response_burst(ap, self._burst(3, ap.mac, cl.mac))
        sim.run(1.0)
        times = [t for _, t in cl.received]
        assert len(times) == 3
        gaps = [b - a for a, b in zip(times, times[1:])]
        for gap in gaps:
            assert gap == pytest.approx(PROBE_RESPONSE_AIRTIME_S)

    def test_burst_fidelity_uses_receive_burst_hook(self):
        sim, medium = _setup(fidelity="burst")

        class BurstStation(FakeStation):
            def __init__(self, *a, **k):
                super().__init__(*a, **k)
                self.bursts = []

            def receive_burst(self, responses, time, spacing):
                self.bursts.append((responses, time, spacing))

        ap = FakeStation("02:00:00:00:00:01", Point(0, 0))
        cl = BurstStation("02:00:00:00:00:02", Point(10, 0))
        medium.attach(ap, 50.0)
        medium.attach(cl, 50.0)
        medium.transmit_response_burst(ap, self._burst(5, ap.mac, cl.mac))
        sim.run(1.0)
        assert len(cl.bursts) == 1
        assert len(cl.bursts[0][0]) == 5
        assert cl.received == []  # everything went through the hook

    def test_burst_fidelity_falls_back_to_per_frame(self):
        sim, medium = _setup(fidelity="burst")
        ap = FakeStation("02:00:00:00:00:01", Point(0, 0))
        cl = FakeStation("02:00:00:00:00:02", Point(10, 0))  # no hook
        medium.attach(ap, 50.0)
        medium.attach(cl, 50.0)
        medium.transmit_response_burst(ap, self._burst(4, ap.mac, cl.mac))
        sim.run(1.0)
        assert len(cl.received) == 4

    def test_empty_burst_is_noop(self):
        sim, medium = _setup()
        ap = FakeStation("02:00:00:00:00:01", Point(0, 0))
        medium.attach(ap, 50.0)
        medium.transmit_response_burst(ap, [])
        sim.run(1.0)

    def test_frames_delivered_counter(self):
        sim, medium = _setup()
        ap = FakeStation("02:00:00:00:00:01", Point(0, 0))
        cl = FakeStation("02:00:00:00:00:02", Point(10, 0))
        medium.attach(ap, 50.0)
        medium.attach(cl, 50.0)
        medium.transmit_response_burst(ap, self._burst(7, ap.mac, cl.mac))
        sim.run(1.0)
        assert medium.frames_delivered == 7


class TestLoss:
    def test_lossy_medium_drops_some_frames(self):
        sim, medium = _setup(loss_rate=0.5)
        a = FakeStation("02:00:00:00:00:01", Point(0, 0))
        b = FakeStation("02:00:00:00:00:02", Point(10, 0))
        medium.attach(a, 50.0)
        medium.attach(b, 50.0)
        for _ in range(200):
            medium.transmit(a, ProbeRequest(a.mac))
        sim.run(10.0)
        assert 40 < len(b.received) < 160
