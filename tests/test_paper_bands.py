"""Integration tests pinning the paper's headline shapes.

These run the real 30-minute deployments (same code path as the
benchmarks) and assert the *relationships* the paper reports — who wins,
by roughly what factor, where the venues differ.  Bands are deliberately
wide: the substrate is synthetic and seeds vary, but the orderings must
hold or the reproduction is broken.
"""

import pytest

from repro.analysis.breakdown import breakdown_hits
from repro.experiments.attackers import (
    make_cityhunter,
    make_cityhunter_basic,
    make_karma,
    make_mana,
)
from repro.experiments.calibration import venue_profile
from repro.experiments.runner import run_experiment

SEED = 7
DURATION = 1800.0


@pytest.fixture(scope="module")
def karma_canteen(city, wigle):
    return run_experiment(
        city, wigle, make_karma(), venue_profile("canteen"), DURATION, seed=SEED
    )


@pytest.fixture(scope="module")
def mana_canteen(city, wigle):
    return run_experiment(
        city, wigle, make_mana(), venue_profile("canteen"), DURATION, seed=SEED
    )


@pytest.fixture(scope="module")
def basic_canteen(city, wigle):
    return run_experiment(
        city, wigle, make_cityhunter_basic(wigle), venue_profile("canteen"),
        DURATION, seed=SEED,
    )


@pytest.fixture(scope="module")
def basic_passage(city, wigle):
    return run_experiment(
        city, wigle, make_cityhunter_basic(wigle), venue_profile("passage"),
        DURATION, seed=SEED,
    )


@pytest.fixture(scope="module")
def adv_canteen(city, wigle):
    return run_experiment(
        city, wigle, make_cityhunter(wigle, city.heatmap),
        venue_profile("canteen"), DURATION, seed=SEED,
    )


@pytest.fixture(scope="module")
def adv_passage(city, wigle):
    return run_experiment(
        city, wigle, make_cityhunter(wigle, city.heatmap),
        venue_profile("passage"), DURATION, seed=SEED,
    )


class TestTable1Shapes:
    def test_karma_broadcast_rate_is_zero(self, karma_canteen):
        assert karma_canteen.summary.connected_broadcast == 0
        assert karma_canteen.h_b == 0.0

    def test_karma_still_lures_direct_probers(self, karma_canteen):
        s = karma_canteen.summary
        assert s.connected_direct > 0
        assert 0.15 < s.connected_direct / s.direct_clients < 0.55

    def test_karma_overall_h_band(self, karma_canteen):
        assert 0.02 < karma_canteen.h < 0.07  # paper: 3.9 %

    def test_mana_broadcast_rate_band(self, mana_canteen):
        assert 0.005 < mana_canteen.h_b < 0.06  # paper: 3 %

    def test_mana_beats_karma(self, mana_canteen, karma_canteen):
        assert mana_canteen.h > karma_canteen.h

    def test_canteen_client_volume(self, karma_canteen):
        assert 450 < karma_canteen.summary.total_clients < 850  # paper: 614

    def test_direct_prober_share(self, karma_canteen):
        s = karma_canteen.summary
        share = s.direct_clients / s.total_clients
        assert 0.10 < share < 0.20  # paper: 85/614 ~ 14 %


class TestTable2And3Shapes:
    def test_basic_cityhunter_crushes_mana_in_canteen(
        self, basic_canteen, mana_canteen
    ):
        assert basic_canteen.h_b > 3 * mana_canteen.h_b  # paper: 15.9 vs 3

    def test_basic_canteen_band(self, basic_canteen):
        assert 0.12 < basic_canteen.h_b < 0.25  # paper: 15.9 %

    def test_wigle_seeds_dominate_basic_hits(self, basic_canteen):
        source, _ = breakdown_hits(basic_canteen.session)
        total = source.from_wigle + source.from_direct
        assert source.from_wigle / total > 0.6  # paper: ~74 %

    def test_basic_collapses_in_passage(self, basic_passage, basic_canteen):
        assert basic_passage.h_b < basic_canteen.h_b / 2.5
        assert 0.015 < basic_passage.h_b < 0.08  # paper: 4.1 %

    def test_passage_client_volume(self, basic_passage):
        assert 1000 < basic_passage.summary.total_clients < 1800  # paper: 1356


class TestAdvancedShapes:
    def test_advanced_fixes_the_passage(self, adv_passage, basic_passage):
        """The whole point of Section IV."""
        assert adv_passage.h_b > 2 * basic_passage.h_b

    def test_advanced_passage_band(self, adv_passage):
        assert 0.08 < adv_passage.h_b < 0.17  # paper: ~12 %

    def test_advanced_canteen_band(self, adv_canteen):
        assert 0.13 < adv_canteen.h_b < 0.25  # paper: ~17.9 %

    def test_canteen_beats_passage(self, adv_canteen, adv_passage):
        assert adv_canteen.h_b > adv_passage.h_b

    def test_headline_improvement_over_mana(self, adv_canteen, mana_canteen):
        # Paper: 4-8x improvement; allow 3-20x for seed noise.
        ratio = adv_canteen.h_b / max(mana_canteen.h_b, 1e-9)
        assert ratio > 3

    def test_h_always_at_least_h_b(self, adv_canteen, adv_passage):
        # Direct probers are easier prey, so h >= h_b in every run.
        for result in (adv_canteen, adv_passage):
            assert result.h >= result.h_b

    def test_popularity_dominates_freshness(self, adv_canteen, adv_passage):
        for result in (adv_canteen, adv_passage):
            _, buffers = breakdown_hits(result.session)
            assert buffers.from_popularity > buffers.from_freshness

    def test_freshness_matters_more_where_people_sit_together(
        self, adv_canteen, adv_passage
    ):
        _, canteen_buf = breakdown_hits(adv_canteen.session)
        _, passage_buf = breakdown_hits(adv_passage.session)
        canteen_share = canteen_buf.from_freshness / max(
            1, canteen_buf.from_popularity + canteen_buf.from_freshness
        )
        passage_share = passage_buf.from_freshness / max(
            1, passage_buf.from_popularity + passage_buf.from_freshness
        )
        assert canteen_share > passage_share

    def test_wigle_dominates_direct_in_advanced_hits(self, adv_passage):
        source, _ = breakdown_hits(adv_passage.session)
        assert source.ratio > 2.0  # paper: 3.5-5.1

    def test_tried_counts_larger_in_canteen(self, adv_canteen, adv_passage):
        import numpy as np

        canteen_sent = np.mean(
            [r.ssids_sent for r in adv_canteen.session.broadcast_clients()]
        )
        passage_sent = np.mean(
            [r.ssids_sent for r in adv_passage.session.broadcast_clients()]
        )
        assert canteen_sent > 1.5 * passage_sent
