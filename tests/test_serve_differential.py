"""Differential harness: service decisions vs the inline simulator.

The serving layer's headline contract is that
:class:`~repro.serve.core.RankingCore` behind the async
:class:`~repro.serve.service.RankingService` makes *bit-identical*
burst decisions to the inline :class:`~repro.core.hunter.CityHunter`
given the same seeded database, RNG stream and event sequence.  These
tests prove it end to end: record the attacker-visible event stream and
the decision stream from real venue scenarios (several venues, seeds,
configs and both fidelity modes), replay the events through the
service, and compare the decision sequences byte for byte — globally,
per client, and at multiple worker counts.
"""

import pytest

from repro.core.config import CityHunterConfig
from repro.experiments.attackers import make_cityhunter
from repro.experiments.calibration import venue_profile
from repro.experiments.runner import run_experiment
from repro.serve.events import decision_rows, decisions_by_client, decisions_digest
from repro.serve.record import record_probe_stream
from repro.serve.service import run_stream

# (venue, seed, duration, config, fidelity) — three-plus scenarios
# spanning venues, seeds, a non-default config and the burst fidelity.
SCENARIOS = [
    ("canteen", 11, 240.0, None, "frame"),
    ("passage", 3, 300.0, None, "frame"),
    ("shopping_center", 5, 180.0,
     CityHunterConfig(initial_pb=24, ghost_picks=1), "frame"),
    ("railway_station", 7, 180.0, None, "burst"),
]

_IDS = ["%s-s%d-%s" % (v, s, f) for v, s, _, _, f in SCENARIOS]


@pytest.fixture(scope="module", params=SCENARIOS, ids=_IDS)
def recording(request, city, wigle):
    venue, seed, duration, config, fidelity = request.param
    return record_probe_stream(
        city,
        wigle,
        venue=venue,
        duration=duration,
        seed=seed,
        config=config,
        fidelity=fidelity,
    )


class TestBitIdentical:
    def test_decision_stream_identical(self, recording, city, wigle):
        """The whole decision stream matches, byte for byte."""
        core = recording.seeded_core(wigle, city)
        service = run_stream(core, recording.events, workers=1)
        assert decision_rows(service.decisions) == decision_rows(
            recording.decisions
        )
        assert decisions_digest(service.decisions) == decisions_digest(
            recording.decisions
        )

    def test_per_client_sequences_identical(self, recording, city, wigle):
        """Every client sees the exact burst sequence the sim sent it."""
        core = recording.seeded_core(wigle, city)
        service = run_stream(core, recording.events, workers=2)
        got = decisions_by_client(service.decisions)
        want = decisions_by_client(recording.decisions)
        assert set(got) == set(want)
        for mac in want:
            assert [d.as_row() for d in got[mac]] == [
                d.as_row() for d in want[mac]
            ], "client %s diverged" % mac

    @pytest.mark.parametrize("workers", [1, 3, 8])
    def test_worker_count_invariance(self, recording, city, wigle, workers):
        """Concurrency never changes the decisions, only the transport."""
        core = recording.seeded_core(wigle, city)
        service = run_stream(core, recording.events, workers=workers)
        assert decisions_digest(service.decisions) == decisions_digest(
            recording.decisions
        )

    def test_session_state_identical(self, recording, city, wigle):
        """The core's session converges to the sim attacker's session."""
        core = recording.seeded_core(wigle, city)
        run_stream(core, recording.events, workers=4)
        sim_session = recording.result.session
        sim_clients = sim_session.clients
        srv_clients = core.session.clients
        assert set(srv_clients) == set(sim_clients)
        for mac, sim_rec in sim_clients.items():
            srv_rec = srv_clients[mac]
            for field in (
                "probes_seen",
                "direct_prober",
                "ssids_sent",
                "connected",
                "hit_time",
                "hit_ssid",
                "hit_origin",
                "hit_bucket",
                "hit_position",
            ):
                assert getattr(srv_rec, field, None) == getattr(
                    sim_rec, field, None
                ), "client %s field %s diverged" % (mac, field)
        assert len(core.db) == len(recording.result.attacker.db)


class TestObserveOnly:
    """Request tracing and heartbeats must not perturb decisions.

    The observability layers only *observe* — no RNG draws, no
    scheduling.  Re-run every differential scenario with
    ``REPRO_REQ_TRACE=1`` and fast service heartbeats enabled and
    demand the digest the un-instrumented run produced, at several
    worker counts (satellite of the request-tracing PR; mirrors the
    lineage/epoch tracer invariance tests).
    """

    @pytest.mark.parametrize("workers", [1, 3, 8])
    def test_tracing_on_digest_identical(
        self, recording, city, wigle, workers, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_REQ_TRACE", "1")
        monkeypatch.setenv("REPRO_SERVE_HEARTBEAT", "0.05")
        # finish() flushes reqtrace JSONL; keep it out of the repo tree.
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        core = recording.seeded_core(wigle, city)
        service = run_stream(core, recording.events, workers=workers)
        assert decisions_digest(service.decisions) == decisions_digest(
            recording.decisions
        )
        assert service.reqtrace is not None and len(service.reqtrace) > 0
        flushed = list((tmp_path / "telemetry").glob("reqtrace-*.jsonl"))
        assert flushed, "finish() should flush the span ring"


def test_recording_is_passthrough(city, wigle):
    """The wire-tap must not perturb the attack it observes."""
    recording = record_probe_stream(
        city, wigle, venue="canteen", duration=240.0, seed=11
    )
    plain = run_experiment(
        city,
        wigle,
        make_cityhunter(wigle, city.heatmap),
        venue_profile("canteen"),
        duration=240.0,
        seed=11,
        fidelity="frame",
    )
    assert (
        recording.result.summary.as_table_row("x")
        == plain.summary.as_table_row("x")
    )
    rec_clients = recording.result.session.clients
    plain_clients = plain.session.clients
    assert set(rec_clients) == set(plain_clients)
    for mac, rec in rec_clients.items():
        other = plain_clients[mac]
        assert (rec.connected, rec.hit_bucket, rec.ssids_sent) == (
            other.connected,
            other.hit_bucket,
            other.ssids_sent,
        )
