"""Tests for KARMA and MANA (repro.attacks)."""

from repro.analysis.session import AttackSession
from repro.attacks.karma import KarmaAttacker
from repro.attacks.mana import ManaAttacker
from repro.dot11.frames import (
    AssocRequest,
    AuthRequest,
    ProbeRequest,
    ProbeResponse,
)
from repro.dot11.medium import Medium
from repro.geo.point import Point
from repro.sim.simulation import Simulation


class Sniffer:
    """Passive station capturing everything the attacker transmits."""

    def __init__(self, mac="02:00:00:00:00:99"):
        self.mac = mac
        self.received = []

    def position_at(self, time):
        return Point(1, 0)

    def receive(self, frame, time):
        self.received.append(frame)

    def receive_burst(self, responses, time, spacing):
        self.received.extend(responses)


def _deploy(attacker_cls, **kwargs):
    sim = Simulation(seed=2)
    medium = Medium(sim)
    attacker = attacker_cls(
        "02:aa:00:00:00:01", Point(0, 0), medium, **kwargs
    )
    sniffer = Sniffer()
    medium.attach(sniffer, 100.0)
    sim.add_entity(attacker)
    sim.run(0.001)
    return sim, medium, attacker, sniffer


class TestKarma:
    def test_mimics_direct_probe(self):
        sim, medium, karma, sniffer = _deploy(KarmaAttacker)
        karma.receive(ProbeRequest(sniffer.mac, "HomeNet"), sim.now)
        sim.run(1.0)
        responses = [f for f in sniffer.received if isinstance(f, ProbeResponse)]
        assert [r.ssid for r in responses] == ["HomeNet"]
        assert responses[0].security.is_open

    def test_ignores_broadcast_probe(self):
        sim, medium, karma, sniffer = _deploy(KarmaAttacker)
        karma.receive(ProbeRequest(sniffer.mac), sim.now)
        sim.run(1.0)
        assert sniffer.received == []

    def test_handshake_served_and_hit_recorded(self):
        sim, medium, karma, sniffer = _deploy(KarmaAttacker)
        karma.receive(ProbeRequest(sniffer.mac, "HomeNet"), sim.now)
        karma.receive(AuthRequest(sniffer.mac, karma.mac), sim.now)
        karma.receive(AssocRequest(sniffer.mac, karma.mac, "HomeNet"), sim.now)
        sim.run(1.0)
        rec = karma.session.clients[sniffer.mac]
        assert rec.connected
        assert rec.hit_ssid == "HomeNet"
        assert rec.connected_via_direct
        kinds = [f.kind for f in sniffer.received]
        assert "auth_resp" in kinds and "assoc_resp" in kinds

    def test_observes_probe_classification(self):
        sim, medium, karma, sniffer = _deploy(KarmaAttacker)
        karma.receive(ProbeRequest(sniffer.mac), sim.now)
        karma.receive(ProbeRequest(sniffer.mac, "X"), sim.now)
        rec = karma.session.clients[sniffer.mac]
        assert rec.direct_prober
        assert rec.probes_seen == 2


class TestMana:
    def test_harvests_direct_probes(self):
        sim, medium, mana, sniffer = _deploy(ManaAttacker)
        mana.receive(ProbeRequest("02:01:00:00:00:01", "A"), sim.now)
        mana.receive(ProbeRequest("02:01:00:00:00:02", "B"), sim.now)
        mana.receive(ProbeRequest("02:01:00:00:00:03", "A"), sim.now)
        assert mana.db_size == 2
        assert mana.db_ssids() == ["A", "B"]

    def test_broadcast_reply_sends_db_in_insertion_order(self):
        sim, medium, mana, sniffer = _deploy(ManaAttacker)
        for i in range(5):
            mana.receive(ProbeRequest("02:01:00:00:00:0%d" % i, f"net{i}"), sim.now)
        mana.receive(ProbeRequest(sniffer.mac), sim.now)
        sim.run(1.0)
        resp = [f.ssid for f in sniffer.received if isinstance(f, ProbeResponse)]
        assert resp == [f"net{i}" for i in range(5)]

    def test_broadcast_reply_empty_db_sends_nothing(self):
        sim, medium, mana, sniffer = _deploy(ManaAttacker)
        mana.receive(ProbeRequest(sniffer.mac), sim.now)
        sim.run(1.0)
        assert sniffer.received == []

    def test_physical_burst_capped_at_double_window(self):
        sim, medium, mana, sniffer = _deploy(ManaAttacker)
        for i in range(300):
            mana.receive(ProbeRequest("02:01:00:00:00:01", f"net{i}"), sim.now)
        mana.receive(ProbeRequest(sniffer.mac), sim.now)
        sim.run(1.0)
        resp = [f for f in sniffer.received if isinstance(f, ProbeResponse)]
        # The tail past 2x the reception window could never be received.
        assert len(resp) == 2 * mana.timing.max_responses_per_scan

    def test_resends_same_head_to_repeat_clients(self):
        """MANA has no untried lists — the defining difference from
        City-Hunter's first improvement."""
        sim, medium, mana, sniffer = _deploy(ManaAttacker)
        mana.receive(ProbeRequest("02:01:00:00:00:01", "A"), sim.now)
        mana.receive(ProbeRequest(sniffer.mac), sim.now)
        mana.receive(ProbeRequest(sniffer.mac), sim.now)
        sim.run(1.0)
        resp = [f.ssid for f in sniffer.received if isinstance(f, ProbeResponse)]
        assert resp == ["A", "A"]

    def test_db_size_series_recorded(self):
        sim, medium, mana, sniffer = _deploy(ManaAttacker)
        mana.receive(ProbeRequest("02:01:00:00:00:01", "A"), sim.now)
        mana.receive(ProbeRequest("02:01:00:00:00:02", "B"), sim.now)
        sizes = [size for _, size in mana.session.db_size_series]
        assert sizes == [1, 2]

    def test_shared_session_injection(self):
        session = AttackSession()
        sim = Simulation(seed=2)
        medium = Medium(sim)
        mana = ManaAttacker("02:aa:00:00:00:01", Point(0, 0), medium, session=session)
        assert mana.session is session
