"""Tests for the event scheduler (repro.sim.scheduler)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.scheduler import Scheduler


class TestScheduling:
    def test_executes_in_time_order(self):
        sched = Scheduler()
        fired = []
        sched.schedule(2.0, fired.append, "b")
        sched.schedule(1.0, fired.append, "a")
        sched.schedule(3.0, fired.append, "c")
        sched.run_all()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sched = Scheduler()
        fired = []
        for tag in "abc":
            sched.schedule(1.0, fired.append, tag)
        sched.run_all()
        assert fired == ["a", "b", "c"]

    def test_clock_matches_fire_time(self):
        sched = Scheduler()
        seen = []
        sched.schedule(1.5, lambda: seen.append(sched.clock.now))
        sched.run_all()
        assert seen == [1.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Scheduler().schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sched = Scheduler()
        sched.schedule(1.0, lambda: None)
        sched.run_all()
        with pytest.raises(ValueError):
            sched.schedule_at(0.5, lambda: None)

    def test_callbacks_can_schedule_more(self):
        sched = Scheduler()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sched.schedule(1.0, chain, n + 1)

        sched.schedule(1.0, chain, 0)
        sched.run_all()
        assert fired == [0, 1, 2, 3]
        assert sched.clock.now == 4.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sched = Scheduler()
        fired = []
        handle = sched.schedule(1.0, fired.append, "x")
        handle.cancel()
        sched.run_all()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        sched = Scheduler()
        keep = sched.schedule(1.0, lambda: None)
        drop = sched.schedule(2.0, lambda: None)
        drop.cancel()
        assert sched.pending == 1
        assert keep.alive


class TestRunUntil:
    def test_stops_at_deadline(self):
        sched = Scheduler()
        fired = []
        sched.schedule(1.0, fired.append, "in")
        sched.schedule(5.0, fired.append, "out")
        sched.run_until(2.0)
        assert fired == ["in"]
        assert sched.clock.now == 2.0

    def test_resume_after_deadline(self):
        sched = Scheduler()
        fired = []
        sched.schedule(5.0, fired.append, "late")
        sched.run_until(2.0)
        sched.run_until(10.0)
        assert fired == ["late"]

    def test_boundary_event_included(self):
        sched = Scheduler()
        fired = []
        sched.schedule(2.0, fired.append, "edge")
        sched.run_until(2.0)
        assert fired == ["edge"]

    def test_past_deadline_rejected(self):
        sched = Scheduler()
        sched.run_until(5.0)
        with pytest.raises(ValueError):
            sched.run_until(1.0)


class TestRunAll:
    def test_returns_fired_count(self):
        sched = Scheduler()
        for i in range(5):
            sched.schedule(float(i), lambda: None)
        assert sched.run_all() == 5
        assert sched.fired == 5

    def test_runaway_guard(self):
        sched = Scheduler()

        def forever():
            sched.schedule(1.0, forever)

        sched.schedule(1.0, forever)
        with pytest.raises(RuntimeError):
            sched.run_all(max_events=100)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), max_size=50))
    def test_property_fire_order_is_sorted(self, delays):
        sched = Scheduler()
        fired = []
        for d in delays:
            sched.schedule(d, lambda d=d: fired.append(d))
        sched.run_all()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
