"""Tests for the bench-regression gate (repro.obs.bench + CLI).

Synthetic ``repro.bench_hotpath/v1`` documents drive the whole gate:
extraction, tolerance arithmetic, one-sided metrics, the trajectory
artefact, and the CLI exit codes CI keys off.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.obs.bench import (
    BENCH_TOLERANCE_DEFAULT,
    append_trajectory,
    compare_bench,
    extract_bench_metrics,
    load_bench_doc,
    render_bench_report,
)


def hotpath_doc(speedups=(3.0, 5.0), stations=(200, 400), wall=0.5):
    grid = [
        {
            "stations": st,
            "speedup": sp,
            "index": {"wall_s": wall, "frames_per_s": 1000.0 / wall},
            "brute": {"wall_s": wall * sp},
        }
        for st, sp in zip(stations, speedups)
    ]
    return {
        "schema": "repro.bench_hotpath/v1",
        "grid": grid,
        "max_speedup": max(speedups),
    }


class TestExtraction:
    def test_gated_and_informational_split(self):
        metrics = extract_bench_metrics(hotpath_doc())
        assert metrics["speedup@200st"]["gated"] is True
        assert metrics["max_speedup"]["gated"] is True
        assert metrics["index_wall_s@200st"]["gated"] is False
        assert metrics["index_wall_s@200st"]["higher_better"] is False
        assert metrics["index_frames_per_s@400st"]["gated"] is False

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            extract_bench_metrics({"schema": "repro.other/v1"})

    def test_load_rejects_schemaless(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_bench_doc(path)


class TestCompare:
    def test_identical_ok(self):
        report = compare_bench(hotpath_doc(), hotpath_doc())
        assert report["ok"] is True
        assert report["regressions"] == []
        assert report["schema"] == "repro.bench_compare/v1"
        assert report["tolerance"] == BENCH_TOLERANCE_DEFAULT

    def test_within_tolerance_ok(self):
        report = compare_bench(
            hotpath_doc(speedups=(2.9, 4.8)), hotpath_doc(), tolerance=0.05
        )
        assert report["ok"] is True

    def test_regression_beyond_tolerance_fails(self):
        report = compare_bench(
            hotpath_doc(speedups=(2.0, 5.0)), hotpath_doc(), tolerance=0.05
        )
        assert report["ok"] is False
        assert "speedup@200st" in report["regressions"]
        assert "speedup@400st" not in report["regressions"]

    def test_improvement_never_regresses(self):
        report = compare_bench(hotpath_doc(speedups=(9.0, 9.0)), hotpath_doc())
        assert report["ok"] is True

    def test_informational_metrics_never_gate(self):
        # Wall time 10x worse, speedups unchanged: still OK.
        report = compare_bench(hotpath_doc(wall=5.0), hotpath_doc(wall=0.5))
        assert report["ok"] is True
        wall_row = next(
            d for d in report["deltas"] if d["metric"] == "index_wall_s@200st"
        )
        assert wall_row["gated"] is False
        assert wall_row["regressed"] is False

    def test_one_sided_metric_never_regresses(self):
        # max_speedup matches the baseline; only the grid point moved.
        current = hotpath_doc(speedups=(5.0,), stations=(800,))
        report = compare_bench(current, hotpath_doc())
        assert report["ok"] is True
        notes = {d["metric"]: d.get("note") for d in report["deltas"]}
        assert notes["speedup@800st"] == "only in current"
        assert notes["speedup@200st"] == "only in baseline"

    def test_schema_mismatch_raises(self):
        with pytest.raises(ValueError):
            compare_bench(hotpath_doc(), {"schema": "repro.other/v1"})

    def test_render_names_regressions(self):
        report = compare_bench(
            hotpath_doc(speedups=(1.0, 5.0)), hotpath_doc()
        )
        out = render_bench_report(report)
        assert "REGRESSED" in out
        assert "FAIL (speedup@200st" in out
        ok = render_bench_report(compare_bench(hotpath_doc(), hotpath_doc()))
        assert "gate: OK" in ok


class TestTrajectory:
    def test_appends_gated_values(self, tmp_path):
        path = tmp_path / "deep" / "trajectory.jsonl"
        report = compare_bench(hotpath_doc(), hotpath_doc())
        append_trajectory(path, report, meta={"commit": "abc123"})
        append_trajectory(path, report)
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["commit"] == "abc123"
        assert lines[0]["ok"] is True
        assert lines[0]["gated"]["speedup@200st"] == 3.0
        assert "index_wall_s@200st" not in lines[0]["gated"]


class TestCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_gate_passes(self, tmp_path, capsys):
        cur = self._write(tmp_path, "cur.json", hotpath_doc())
        base = self._write(tmp_path, "base.json", hotpath_doc())
        rc = main(["obs", "bench", "--current", cur, "--baseline", base])
        assert rc == 0
        assert "gate: OK" in capsys.readouterr().out

    def test_gate_fails_on_regression(self, tmp_path, capsys):
        cur = self._write(
            tmp_path, "cur.json", hotpath_doc(speedups=(1.5, 5.0))
        )
        base = self._write(tmp_path, "base.json", hotpath_doc())
        rc = main(["obs", "bench", "--current", cur, "--baseline", base])
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_tolerance_flag(self, tmp_path, capsys):
        cur = self._write(
            tmp_path, "cur.json", hotpath_doc(speedups=(2.0, 5.0))
        )
        base = self._write(tmp_path, "base.json", hotpath_doc())
        rc = main(
            ["obs", "bench", "--current", cur, "--baseline", base,
             "--tolerance", "0.5"]
        )
        assert rc == 0

    def test_trajectory_flag(self, tmp_path, capsys):
        cur = self._write(tmp_path, "cur.json", hotpath_doc())
        base = self._write(tmp_path, "base.json", hotpath_doc())
        traj = tmp_path / "trajectory.jsonl"
        rc = main(
            ["obs", "bench", "--current", cur, "--baseline", base,
             "--trajectory", str(traj)]
        )
        assert rc == 0
        assert traj.is_file()
        assert "trajectory appended" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", hotpath_doc())
        rc = main(
            ["obs", "bench", "--current", str(tmp_path / "nope.json"),
             "--baseline", base]
        )
        assert rc == 2
        assert "bench gate error" in capsys.readouterr().err

    def test_committed_baseline_is_comparable(self):
        """The committed baseline must stay loadable and self-compare OK."""
        baseline = load_bench_doc(
            pathlib.Path(__file__).resolve().parents[1]
            / "benchmarks"
            / "baselines"
            / "BENCH_hotpath.json"
        )
        report = compare_bench(baseline, baseline)
        assert report["ok"] is True
        assert any(m.startswith("speedup@") for m in (
            d["metric"] for d in report["deltas"]
        ))
