"""Tests for deterministic RNG management (repro.util.rng)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "population") == derive_seed(42, "population")

    def test_name_sensitivity(self):
        assert derive_seed(42, "population") != derive_seed(42, "mobility")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "population") != derive_seed(2, "population")

    @given(st.integers(min_value=-(2**62), max_value=2**62), st.text(max_size=40))
    def test_result_fits_64_bits(self, seed, name):
        child = derive_seed(seed, name)
        assert 0 <= child < 2**64


class TestRngRegistry:
    def test_same_name_same_generator_instance(self):
        rngs = RngRegistry(7)
        assert rngs.stream("a") is rngs.stream("a")

    def test_different_names_different_draws(self):
        rngs = RngRegistry(7)
        a = rngs.stream("a").random(8)
        b = rngs.stream("b").random(8)
        assert not np.allclose(a, b)

    def test_reproducible_across_registries(self):
        one = RngRegistry(7).stream("x").random(8)
        two = RngRegistry(7).stream("x").random(8)
        assert np.allclose(one, two)

    def test_stream_isolation(self):
        """Consuming one stream must not perturb another."""
        plain = RngRegistry(7)
        expected = plain.stream("target").random(4)

        noisy = RngRegistry(7)
        noisy.stream("other").random(1000)  # burn a different stream
        observed = noisy.stream("target").random(4)
        assert np.allclose(expected, observed)

    def test_fresh_resets_stream(self):
        rngs = RngRegistry(7)
        first = rngs.stream("x").random(4)
        rngs.stream("x").random(100)
        replay = rngs.fresh("x").random(4)
        assert np.allclose(first, replay)

    def test_child_registry_differs_from_parent(self):
        parent = RngRegistry(7)
        child = parent.child("trial-0")
        assert child.seed != parent.seed
        assert not np.allclose(
            parent.stream("x").random(4), child.stream("x").random(4)
        )

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry("42")  # type: ignore[arg-type]

    def test_seed_property(self):
        assert RngRegistry(99).seed == 99
