#!/usr/bin/env python
"""Regenerate the golden-master metrics fixture.

Run after an *intentional* simulation-behaviour change::

    PYTHONPATH=src python tests/regen_golden.py

Rewrites ``tests/data/golden_metrics.json`` (the canonical metrics
document of the batch in :mod:`repro.experiments.golden`, serial run)
and ``tests/data/golden_metrics.digest`` (its SHA-256).  Commit both
together with the change that moved them, and say why in the message —
the whole point of the fixture is that drift is loud and reviewed.
"""

import json
import os
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

DATA_DIR = pathlib.Path(__file__).resolve().parent / "data"
DOC_PATH = DATA_DIR / "golden_metrics.json"
DIGEST_PATH = DATA_DIR / "golden_metrics.digest"


def main() -> int:
    with tempfile.TemporaryDirectory() as scratch:
        # Keep the batch's own artefacts out of benchmarks/out.
        os.environ["REPRO_ARTIFACT_DIR"] = scratch
        os.environ.pop("REPRO_MEDIUM_INDEX", None)
        from repro.experiments.golden import run_golden
        from repro.obs.golden import canonical_metrics_doc, metrics_digest

        doc = run_golden(workers=1)
    canonical = canonical_metrics_doc(doc)
    digest = metrics_digest(doc)
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    DOC_PATH.write_text(json.dumps(canonical, indent=2, sort_keys=True) + "\n")
    DIGEST_PATH.write_text(digest + "\n")
    print(f"wrote {DOC_PATH}")
    print(f"wrote {DIGEST_PATH}: {digest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
