#!/usr/bin/env python
"""Regenerate the golden-master metrics fixtures.

Run after an *intentional* simulation-behaviour change::

    PYTHONPATH=src python tests/regen_golden.py

Rewrites ``tests/data/golden_metrics.json`` (the canonical metrics
document of the batch in :mod:`repro.experiments.golden`, serial run)
and ``tests/data/golden_metrics.digest`` (its SHA-256), plus the
sharded-city pair ``tests/data/golden_shards.json`` /
``tests/data/golden_shards.digest`` (serial, 1 shard — the digest every
other shard count must reproduce).  Commit the changed files together
with the change that moved them, and say why in the message — the whole
point of the fixtures is that drift is loud and reviewed.
"""

import json
import os
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

DATA_DIR = pathlib.Path(__file__).resolve().parent / "data"
DOC_PATH = DATA_DIR / "golden_metrics.json"
DIGEST_PATH = DATA_DIR / "golden_metrics.digest"
SHARDS_DOC_PATH = DATA_DIR / "golden_shards.json"
SHARDS_DIGEST_PATH = DATA_DIR / "golden_shards.digest"


def _write_pair(doc_path, digest_path, doc) -> str:
    from repro.obs.golden import canonical_metrics_doc, metrics_digest

    canonical = canonical_metrics_doc(doc)
    digest = metrics_digest(doc)
    doc_path.write_text(json.dumps(canonical, indent=2, sort_keys=True) + "\n")
    digest_path.write_text(digest + "\n")
    print(f"wrote {doc_path}")
    print(f"wrote {digest_path}: {digest}")
    return digest


def main() -> int:
    with tempfile.TemporaryDirectory() as scratch:
        # Keep the batches' own artefacts out of benchmarks/out.
        os.environ["REPRO_ARTIFACT_DIR"] = scratch
        os.environ.pop("REPRO_MEDIUM_INDEX", None)
        os.environ.pop("REPRO_SHARDS", None)
        from repro.experiments.golden import run_golden, run_golden_shards

        doc = run_golden(workers=1)
        shards_doc = run_golden_shards(workers=1, shards=1)
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    _write_pair(DOC_PATH, DIGEST_PATH, doc)
    _write_pair(SHARDS_DOC_PATH, SHARDS_DIGEST_PATH, shards_doc)
    return 0


if __name__ == "__main__":
    sys.exit(main())
