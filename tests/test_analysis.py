"""Tests for attacker-side bookkeeping and metrics (repro.analysis)."""

import pytest

from repro.analysis.breakdown import breakdown_hits
from repro.analysis.metrics import summarize
from repro.analysis.session import AttackSession, SentSsid
from repro.analysis.timeseries import (
    cumulative_broadcast_connections,
    db_size_at_steps,
    windowed_broadcast_hit_rate,
)


def _session_with_traffic():
    s = AttackSession()
    # Broadcast client hit via a wigle PB ssid.
    s.observe_probe("mac-a", 10.0, direct=False)
    s.record_sent("mac-a", 10.0, [SentSsid("pop", "wigle", "pb"),
                                  SentSsid("fresh", "direct", "fb")])
    s.record_hit("mac-a", 11.0, "pop")
    # Direct client hit via mimic.
    s.observe_probe("mac-b", 20.0, direct=True)
    s.record_mimic("mac-b", 20.0, "HomeNet")
    s.record_hit("mac-b", 21.0, "HomeNet")
    # Broadcast client, never hit.
    s.observe_probe("mac-c", 30.0, direct=False)
    s.record_sent("mac-c", 30.0, [SentSsid("pop", "wigle", "pb")])
    # Broadcast client hit via freshness, direct origin.
    s.observe_probe("mac-d", 40.0, direct=False)
    s.record_sent("mac-d", 40.0, [SentSsid("fresh", "direct", "fb")])
    s.record_hit("mac-d", 41.0, "fresh")
    return s


class TestSession:
    def test_client_classification(self):
        s = _session_with_traffic()
        assert {r.mac for r in s.direct_clients()} == {"mac-b"}
        assert {r.mac for r in s.broadcast_clients()} == {"mac-a", "mac-c", "mac-d"}

    def test_hit_provenance(self):
        s = _session_with_traffic()
        a = s.clients["mac-a"]
        assert a.hit_origin == "wigle" and a.hit_bucket == "pb"
        assert a.hit_position == 1
        assert a.connected_via_broadcast and not a.connected_via_direct
        b = s.clients["mac-b"]
        assert b.connected_via_direct
        assert b.hit_position is None

    def test_duplicate_hit_keeps_first(self):
        s = _session_with_traffic()
        s.record_hit("mac-a", 99.0, "fresh")
        assert s.clients["mac-a"].hit_ssid == "pop"
        assert s.clients["mac-a"].hit_time == 11.0

    def test_hit_on_unadvertised_ssid_marked_unknown(self):
        s = AttackSession()
        s.observe_probe("m", 0.0, direct=False)
        rec = s.record_hit("m", 1.0, "mystery")
        assert rec.hit_origin == "unknown"

    def test_tried_count(self):
        s = _session_with_traffic()
        assert s.tried_count("mac-a") == 2
        assert s.tried_count("nobody") == 0

    def test_records_sorted_by_first_seen(self):
        s = _session_with_traffic()
        times = [r.first_seen for r in s.records()]
        assert times == sorted(times)

    def test_probe_counter(self):
        s = AttackSession()
        s.observe_probe("m", 0.0, direct=False)
        s.observe_probe("m", 1.0, direct=True)
        assert s.clients["m"].probes_seen == 2
        assert s.clients["m"].direct_prober


class TestSummary:
    def test_counts_and_rates(self):
        summary = summarize(_session_with_traffic())
        assert summary.total_clients == 4
        assert summary.direct_clients == 1
        assert summary.broadcast_clients == 3
        assert summary.connected_direct == 1
        assert summary.connected_broadcast == 2
        assert summary.hit_rate == pytest.approx(3 / 4)
        assert summary.broadcast_hit_rate == pytest.approx(2 / 3)

    def test_empty_session(self):
        summary = summarize(AttackSession())
        assert summary.hit_rate == 0.0
        assert summary.broadcast_hit_rate == 0.0

    def test_table_row_formatting(self):
        row = summarize(_session_with_traffic()).as_table_row("X")
        assert row[0] == "X"
        assert row[2] == "1/3"
        assert "75.0%" in row[4]

    def test_direct_prober_hit_via_broadcast_counts_as_direct_client(self):
        s = AttackSession()
        s.observe_probe("m", 0.0, direct=True)
        s.record_sent("m", 0.0, [SentSsid("pop", "wigle", "pb")])
        s.record_hit("m", 1.0, "pop")
        summary = summarize(s)
        # Client class wins: it is a direct client even though the hit
        # came through the broadcast machinery.
        assert summary.connected_direct == 1
        assert summary.connected_broadcast == 0


class TestBreakdown:
    def test_source_and_buffer_split(self):
        src, buf = breakdown_hits(_session_with_traffic())
        assert src.from_wigle == 1
        assert src.from_direct == 1
        assert buf.from_popularity == 1
        assert buf.from_freshness == 1

    def test_mimic_hits_excluded(self):
        s = _session_with_traffic()
        src, buf = breakdown_hits(s)
        assert src.from_wigle + src.from_direct + src.from_other == 2

    def test_ratios(self):
        src, _ = breakdown_hits(_session_with_traffic())
        assert src.ratio == pytest.approx(1.0)

    def test_ratio_zero_denominator(self):
        from repro.analysis.breakdown import BufferBreakdown, SourceBreakdown

        assert SourceBreakdown(5, 0).ratio == float("inf")
        assert SourceBreakdown(0, 0).ratio == 0.0
        assert BufferBreakdown(3, 0).ratio == float("inf")


class TestTimeseries:
    def test_windowed_rate(self):
        s = _session_with_traffic()
        windows = windowed_broadcast_hit_rate(s, duration=60.0, window=20.0)
        assert len(windows) == 3
        # mac-a (hit) lands in window 0; mac-c (miss) + mac-d (hit) in 1-2.
        assert windows[0].broadcast_clients == 1
        assert windows[0].connected == 1
        assert windows[0].rate == 1.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            windowed_broadcast_hit_rate(AttackSession(), duration=0.0, window=1.0)

    def test_clients_outside_duration_ignored(self):
        s = AttackSession()
        s.observe_probe("late", 1000.0, direct=False)
        windows = windowed_broadcast_hit_rate(s, duration=60.0, window=20.0)
        assert sum(w.broadcast_clients for w in windows) == 0

    def test_cumulative_connections_monotone(self):
        s = _session_with_traffic()
        series = cumulative_broadcast_connections(s, duration=60.0, step=10.0)
        values = [v for _, v in series]
        assert values == sorted(values)
        assert values[-1] == 2

    def test_db_size_steps(self):
        s = AttackSession()
        s.record_db_size(0.0, 10)
        s.record_db_size(25.0, 20)
        series = db_size_at_steps(s, duration=40.0, step=10.0)
        assert series == [(10.0, 10), (20.0, 10), (30.0, 20), (40.0, 20)]

    def test_db_size_empty_session(self):
        series = db_size_at_steps(AttackSession(), duration=20.0, step=10.0)
        assert series == [(10.0, 0), (20.0, 0)]
