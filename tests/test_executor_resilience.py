"""Tests for executor fault tolerance (retry, placeholders, resume).

The contract under test: worker death retries the same spec (same
derived seed, so a survivor is bit-identical to a crash-free run),
irrecoverable specs become FailedRun placeholders instead of aborting
the batch, and a checkpointed batch resumes without re-executing
completed runs.
"""

import json

import pytest

from repro.experiments import parallel
from repro.experiments.parallel import (
    FailedRun,
    RunCheckpoint,
    RunSpec,
    RunSummary,
    execute_spec,
    resolve_backoff,
    resolve_checkpoint_name,
    resolve_retries,
    resolve_spec_timeout,
    run_specs,
    spec_digest,
)
from repro.faults.chaos import InjectedWorkerCrash, maybe_crash
from repro.faults.plan import FaultPlan
from repro.obs.registry import validate_metrics_doc

_QUICK = dict(duration=150.0, fidelity="burst")
_FAST = dict(retry_backoff=0.01)


def _spec(seed=7, tag="t", **overrides):
    kwargs = dict(
        attacker="cityhunter", venue="canteen", seed=seed, tag=tag, **_QUICK
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


def _strip_timers(snapshot):
    return {k: v for k, v in snapshot.items() if k != "timers"}


@pytest.fixture(autouse=True)
def _artifact_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
    return tmp_path


class TestChaosHook:
    def test_inline_crash_raises(self):
        with pytest.raises(InjectedWorkerCrash):
            maybe_crash(FaultPlan(worker_crashes=1), attempt=0)

    def test_exhausted_schedule_is_silent(self):
        maybe_crash(FaultPlan(worker_crashes=1), attempt=1)
        maybe_crash(FaultPlan(), attempt=0)
        maybe_crash(None, attempt=0)


class TestSpecDigest:
    def test_stable_for_equal_specs(self):
        assert spec_digest(_spec()) == spec_digest(_spec())

    def test_any_field_change_invalidates(self):
        base = _spec()
        assert spec_digest(base) != spec_digest(_spec(seed=8))
        assert spec_digest(base) != spec_digest(
            _spec(faults=FaultPlan(seed=1))
        )


class TestEmptyBatchGuard:
    def test_returns_early_without_artifacts(self, _artifact_dir):
        assert run_specs([]) == []
        assert list(_artifact_dir.iterdir()) == []


class TestSerialResilience:
    def test_crash_retry_is_bit_identical(self):
        clean = run_specs([_spec()], workers=1)[0]
        crashed = run_specs(
            [_spec(faults=FaultPlan(worker_crashes=1))], workers=1, **_FAST
        )[0]
        assert isinstance(crashed, RunSummary)
        assert crashed.summary == clean.summary
        assert crashed.source == clean.source
        assert crashed.events == clean.events
        assert _strip_timers(crashed.metrics) == _strip_timers(clean.metrics)

    def test_unrecoverable_crash_becomes_placeholder(self):
        out = run_specs(
            [_spec(faults=FaultPlan(worker_crashes=5))],
            workers=1, retries=1, **_FAST,
        )
        assert len(out) == 1
        failed = out[0]
        assert isinstance(failed, FailedRun)
        assert failed.failed
        assert failed.kind == "worker-crash"
        assert failed.attempts == 2  # first try + one retry

    def test_exception_fails_fast_without_retry(self):
        # venue validity is only checked inside the worker; a
        # deterministic exception must not burn the retry budget.
        out = run_specs(
            [RunSpec(attacker="karma", venue="atlantis", tag="x", **_QUICK)],
            workers=1, **_FAST,
        )
        assert out[0].kind == "exception"
        assert out[0].attempts == 1
        assert "atlantis" in out[0].error

    def test_batch_survives_mixed_failure(self):
        specs = [
            _spec(tag="ok"),
            RunSpec(attacker="karma", venue="atlantis", tag="bad", **_QUICK),
            _spec(seed=9, tag="ok2"),
        ]
        out = run_specs(specs, workers=1, **_FAST)
        assert [r.failed for r in out] == [False, True, False]
        clean = run_specs([specs[0], specs[2]], workers=1)
        assert out[0].summary == clean[0].summary
        assert out[2].summary == clean[1].summary


class TestPooledResilience:
    def test_worker_crash_retry_is_bit_identical(self):
        specs = [
            _spec(tag="a"),
            _spec(seed=9, tag="b", faults=FaultPlan(seed=1, worker_crashes=1)),
        ]
        clean = run_specs([_spec(tag="a"), _spec(seed=9, tag="b")], workers=2)
        out = run_specs(specs, workers=2, **_FAST)
        assert [type(r) for r in out] == [RunSummary, RunSummary]
        for survivor, reference in zip(out, clean):
            assert survivor.summary == reference.summary
            assert survivor.events == reference.events
            assert _strip_timers(survivor.metrics) == _strip_timers(
                reference.metrics
            )

    def test_repeated_crashes_fail_only_the_culprit(self):
        specs = [
            _spec(tag="ok"),
            _spec(seed=9, tag="doomed", faults=FaultPlan(worker_crashes=99)),
        ]
        out = run_specs(specs, workers=2, retries=1, **_FAST)
        assert not out[0].failed
        assert out[1].failed
        assert out[1].kind == "worker-crash"

    def test_timeout_becomes_placeholder(self):
        out = run_specs(
            [_spec(tag="slow"), _spec(seed=9, tag="slow2")],
            workers=2, spec_timeout=0.001, retries=0, **_FAST,
        )
        assert all(r.failed for r in out)
        assert {r.kind for r in out} <= {"timeout", "worker-crash"}
        assert any(r.kind == "timeout" for r in out)


class TestFailedRunArtifacts:
    def test_artifacts_keep_slots_and_validate(self, _artifact_dir):
        specs = [
            _spec(tag="ok"),
            RunSpec(attacker="karma", venue="atlantis", tag="bad", **_QUICK),
        ]
        run_specs(specs, workers=1, **_FAST)
        metrics = json.loads((_artifact_dir / "metrics.json").read_text())
        validate_metrics_doc(metrics)
        assert [r.get("failed", False) for r in metrics["runs"]] == [
            False, True,
        ]
        assert metrics["runs"][1]["failure_kind"] == "exception"
        timings = json.loads((_artifact_dir / "timings.json").read_text())
        assert timings["failed_count"] == 1
        assert timings["run_count"] == 2
        assert "wall_time_s" not in timings["runs"][1]
        assert timings["cache_build_s"] >= 0.0


class TestCheckpointResume:
    def test_round_trip_is_bit_identical(self, _artifact_dir, monkeypatch):
        specs = [_spec(tag="a"), _spec(seed=9, tag="b")]
        first = run_specs(specs, workers=1, checkpoint_name="ck")
        assert (_artifact_dir / "ck.jsonl").exists()

        def _boom(spec):
            raise AssertionError("resume must not re-execute %s" % spec.tag)

        monkeypatch.setattr(parallel, "execute_spec", _boom)
        second = run_specs(specs, workers=1, checkpoint_name="ck")
        assert first == second  # spec, summary, metrics, events, walls

    def test_partial_checkpoint_runs_only_the_missing(self, monkeypatch):
        specs = [_spec(tag="a"), _spec(seed=9, tag="b")]
        run_specs([specs[0]], workers=1, checkpoint_name="ck")
        executed = []
        real = execute_spec

        def _counting(spec):
            executed.append(spec.tag)
            return real(spec)

        monkeypatch.setattr(parallel, "execute_spec", _counting)
        out = run_specs(specs, workers=1, checkpoint_name="ck")
        assert executed == ["b"]
        assert [r.spec.tag for r in out] == ["a", "b"]

    def test_failed_runs_are_not_checkpointed(self, monkeypatch):
        bad = RunSpec(attacker="karma", venue="atlantis", tag="bad", **_QUICK)
        run_specs([bad], workers=1, checkpoint_name="ck", **_FAST)
        executed = []
        real = execute_spec

        def _counting(spec):
            executed.append(spec.tag)
            return real(spec)

        monkeypatch.setattr(parallel, "execute_spec", _counting)
        out = run_specs([bad], workers=1, checkpoint_name="ck", **_FAST)
        assert executed == ["bad"]  # re-attempted, not restored
        assert out[0].failed

    def test_spec_change_invalidates_entry(self, monkeypatch):
        run_specs([_spec(tag="a")], workers=1, checkpoint_name="ck")
        executed = []
        real = execute_spec

        def _counting(spec):
            executed.append(spec.seed)
            return real(spec)

        monkeypatch.setattr(parallel, "execute_spec", _counting)
        run_specs([_spec(tag="a", seed=8)], workers=1, checkpoint_name="ck")
        assert executed == [8]

    def test_truncated_line_is_skipped(self, _artifact_dir):
        specs = [_spec(tag="a"), _spec(seed=9, tag="b")]
        run_specs(specs, workers=1, checkpoint_name="ck")
        path = _artifact_dir / "ck.jsonl"
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        ck = RunCheckpoint(path)
        assert len(ck) == 1  # the intact record survives

    def test_crash_then_resume_round_trip(self, monkeypatch):
        # The chaos-smoke scenario end-to-end: a crashing batch with a
        # checkpoint, then a clean re-invocation restoring every run.
        specs = [
            _spec(tag="a", faults=FaultPlan(worker_crashes=1)),
            _spec(seed=9, tag="b"),
        ]
        first = run_specs(specs, workers=1, checkpoint_name="ck", **_FAST)
        assert all(isinstance(r, RunSummary) for r in first)

        def _boom(spec):
            raise AssertionError("must resume from checkpoint")

        monkeypatch.setattr(parallel, "execute_spec", _boom)
        second = run_specs(specs, workers=1, checkpoint_name="ck")
        assert first == second


class TestEnvResolution:
    def test_retries(self, monkeypatch):
        monkeypatch.delenv("REPRO_RETRIES", raising=False)
        assert resolve_retries() == parallel.DEFAULT_RETRIES
        monkeypatch.setenv("REPRO_RETRIES", "5")
        assert resolve_retries() == 5
        assert resolve_retries(0) == 0  # argument wins
        monkeypatch.setenv("REPRO_RETRIES", "-1")
        with pytest.raises(ValueError, match="REPRO_RETRIES"):
            resolve_retries()

    def test_backoff(self, monkeypatch):
        monkeypatch.delenv("REPRO_RETRY_BACKOFF_S", raising=False)
        assert resolve_backoff() == parallel.DEFAULT_BACKOFF_S
        monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "2.5")
        assert resolve_backoff() == 2.5
        with pytest.raises(ValueError):
            resolve_backoff(-1.0)

    def test_spec_timeout(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPEC_TIMEOUT_S", raising=False)
        assert resolve_spec_timeout() is None
        monkeypatch.setenv("REPRO_SPEC_TIMEOUT_S", "0")
        assert resolve_spec_timeout() is None
        monkeypatch.setenv("REPRO_SPEC_TIMEOUT_S", "12.5")
        assert resolve_spec_timeout() == 12.5
        assert resolve_spec_timeout(3.0) == 3.0

    def test_checkpoint_name(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT", raising=False)
        assert resolve_checkpoint_name() is None
        monkeypatch.setenv("REPRO_CHECKPOINT", "0")
        assert resolve_checkpoint_name() is None
        monkeypatch.setenv("REPRO_CHECKPOINT", "1")
        assert resolve_checkpoint_name() == "checkpoint"
        monkeypatch.setenv("REPRO_CHECKPOINT", "my-batch")
        assert resolve_checkpoint_name() == "my-batch"
        assert resolve_checkpoint_name("explicit") == "explicit"
