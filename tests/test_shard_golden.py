"""Golden shard-count invariance against the committed fixture.

``tests/data/golden_shards.*`` pins the canonical metrics document of
the sharded golden batch (:func:`repro.experiments.golden.golden_shard_specs`)
run serially at one shard.  These tests assert the live tree reproduces
it at shards 1, 2 and 4 and at executor width 4 — the same contract the
CI ``shard-smoke`` job drives through the CLI.  On mismatch the failure
message is a per-section diff, not two hashes; regenerate with
``python tests/regen_golden.py`` if the change was intentional.
"""

import json
import os
import pathlib

import pytest

from repro.experiments.golden import golden_shard_specs, run_golden_shards
from repro.obs.golden import diff_metrics_docs, metrics_digest
from repro.obs.registry import validate_metrics_doc
from repro.sim.shards import (
    CKPT_EVERY_ENV,
    MAX_RECOVERIES_ENV,
    PHASE_TIMEOUT_ENV,
    SHARD_MODE_ENV,
    SHARDS_ENV,
)
from repro.sim.shards.soa import BACKEND_ENV

DATA_DIR = pathlib.Path(__file__).resolve().parent / "data"
DOC_PATH = DATA_DIR / "golden_shards.json"
DIGEST_PATH = DATA_DIR / "golden_shards.digest"

_SCOPED_ENV = (
    "REPRO_ARTIFACT_DIR",
    "REPRO_WORKERS",
    "REPRO_EPOCH_TRACE",
    "REPRO_HEARTBEAT",
    SHARDS_ENV,
    SHARD_MODE_ENV,
    BACKEND_ENV,
    CKPT_EVERY_ENV,
    PHASE_TIMEOUT_ENV,
    MAX_RECOVERIES_ENV,
)


@pytest.fixture(scope="module")
def shard_golden_env(tmp_path_factory):
    saved = {k: os.environ.get(k) for k in _SCOPED_ENV}
    os.environ["REPRO_ARTIFACT_DIR"] = str(tmp_path_factory.mktemp("shard-golden"))
    for key in _SCOPED_ENV[1:]:
        os.environ.pop(key, None)
    yield
    for key, value in saved.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


@pytest.fixture(scope="module")
def serial_doc(shard_golden_env):
    """The sharded golden batch, serial, one shard."""
    return run_golden_shards(workers=1, shards=1)


def fixture_doc() -> dict:
    return json.loads(DOC_PATH.read_text())


def fixture_digest() -> str:
    return DIGEST_PATH.read_text().strip()


def _assert_same(reference: dict, candidate: dict, context: str) -> None:
    if metrics_digest(reference) == metrics_digest(candidate):
        return
    diff = diff_metrics_docs(reference, candidate)
    pytest.fail(f"shard metrics drift ({context}):\n{diff}")


class TestFixtureIntegrity:
    def test_fixture_files_exist(self):
        assert DOC_PATH.is_file() and DIGEST_PATH.is_file()

    def test_digest_matches_committed_doc(self):
        assert metrics_digest(fixture_doc()) == fixture_digest()

    def test_fixture_covers_every_shard_spec(self):
        doc = fixture_doc()
        specs = golden_shard_specs()
        assert doc["run_count"] == len(specs)
        assert [run["tag"] for run in doc["runs"]] == [s.tag for s in specs]
        assert not any(run.get("failed") for run in doc["runs"])

    def test_canonical_form_has_no_shardops_keys(self):
        """shardops.* is shard-count-dependent by design, so the golden
        canonical form must not contain a single key of it."""
        doc = fixture_doc()
        sections = [doc["merged"]] + [run["metrics"] for run in doc["runs"]]
        for snap in sections:
            for section in ("counters", "gauges", "histograms", "series"):
                keys = snap.get(section, {})
                assert not [k for k in keys if k.startswith("shardops.")]

    def test_fixture_has_shard_workload(self):
        counters = fixture_doc()["merged"]["counters"]
        assert counters.get("shardsim.hits", 0) > 0
        assert counters.get("shardsim.scans", 0) > 0


class TestShardCountInvariance:
    def test_one_shard_matches_fixture(self, serial_doc):
        validate_metrics_doc(serial_doc)
        _assert_same(
            fixture_doc(),
            serial_doc,
            "live tree vs committed fixture — regenerate with "
            "tests/regen_golden.py if this change is intentional",
        )
        assert metrics_digest(serial_doc) == fixture_digest()

    @pytest.mark.parametrize("shards", [2, 4])
    def test_shard_count_invariance(self, serial_doc, shards):
        doc = run_golden_shards(workers=1, shards=shards)
        _assert_same(serial_doc, doc, f"shards=1 vs shards={shards}")
        assert metrics_digest(doc) == fixture_digest()

    def test_worker_width_invariance(self, serial_doc):
        doc = run_golden_shards(workers=4, shards=2)
        assert doc["workers"] == 4
        _assert_same(serial_doc, doc, "workers=1 vs workers=4 (shards=2)")
        assert metrics_digest(doc) == fixture_digest()

    def test_epoch_trace_on_invariance(self, serial_doc):
        """The shard ops plane is observation-only: with per-epoch
        barrier tracing and heartbeats both on, every metric of the
        sharded golden batch must stay bit-identical — no extra RNG
        draws, no extra scheduled events, no metric writes (mirror of
        test_golden_master's test_lineage_on_invariance)."""
        os.environ["REPRO_EPOCH_TRACE"] = "1"
        os.environ["REPRO_HEARTBEAT"] = "0.2"
        try:
            traced_doc = run_golden_shards(workers=1, shards=2)
        finally:
            os.environ.pop("REPRO_EPOCH_TRACE", None)
            os.environ.pop("REPRO_HEARTBEAT", None)
        _assert_same(
            serial_doc, traced_doc,
            "epoch trace off vs REPRO_EPOCH_TRACE=1 (shards=2)",
        )
        assert metrics_digest(traced_doc) == fixture_digest()
        telemetry = (
            pathlib.Path(os.environ["REPRO_ARTIFACT_DIR"]) / "telemetry"
        )
        spans = sorted(telemetry.glob("epochs-*.jsonl"))
        assert len(spans) == 2, spans

    def test_checkpoint_on_invariance(self, serial_doc):
        """Epoch-barrier checkpointing is observation-only: with
        ``REPRO_SHARD_CKPT_EVERY`` set, every metric of the sharded
        golden batch must stay bit-identical to the checkpoint-free
        fixture — state is captured before any checkpoint accounting,
        so the sim steps the same either way."""
        os.environ[CKPT_EVERY_ENV] = "7"
        try:
            ckpt_doc = run_golden_shards(workers=1, shards=2)
        finally:
            os.environ.pop(CKPT_EVERY_ENV, None)
        _assert_same(
            serial_doc, ckpt_doc,
            "checkpointing off vs %s=7 (shards=2)" % CKPT_EVERY_ENV,
        )
        assert metrics_digest(ckpt_doc) == fixture_digest()
        ckpt_dir = (
            pathlib.Path(os.environ["REPRO_ARTIFACT_DIR"]) / "checkpoints"
        )
        assert (ckpt_dir / "manifest.json").is_file()
