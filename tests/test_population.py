"""Tests for population synthesis (repro.population)."""

import numpy as np
import pytest

from repro.dot11.capabilities import NetworkProfile, Security
from repro.population.groups import GroupModel, draw_group_core, member_share
from repro.population.person import OsFamily, PersonSpec
from repro.population.pnl import CARRIER_SSIDS, VenueContext
from repro.population.synthesis import PersonFactory


@pytest.fixture(scope="module")
def factory(city, wigle):
    venue = city.venue("University Canteen")
    near = wigle.nearest_free_ssids(venue.region.center, 50)
    ctx = VenueContext(venue, [s for s in near if s not in venue.wifi_ssids][:40])
    return PersonFactory(city, ctx, np.random.default_rng(11))


@pytest.fixture(scope="module")
def crowd(factory):
    people = []
    rng = np.random.default_rng(5)
    while len(people) < 4000:
        size = 1 + int(rng.choice(4, p=[0.62, 0.24, 0.10, 0.04]))
        people.extend(factory.make_group(size))
    return people


class TestPersonBasics:
    def test_ids_unique(self, crowd):
        ids = [p.person_id for p in crowd]
        assert len(ids) == len(set(ids))

    def test_every_pnl_nonempty(self, crowd):
        assert all(len(p.pnl) >= 1 for p in crowd)

    def test_open_pnl_helper(self):
        p = PersonSpec(
            0,
            OsFamily.IOS,
            {
                "open": NetworkProfile("open", Security.OPEN),
                "shut": NetworkProfile("shut", Security.WPA2_PSK),
            },
        )
        assert p.open_pnl_ssids() == ("open",)
        assert p.has_open_entry()


class TestCalibratedMarginals:
    def test_ios_share(self, crowd):
        ios = sum(1 for p in crowd if p.os_family is OsFamily.IOS)
        assert 0.40 < ios / len(crowd) < 0.50

    def test_unsafe_share_near_paper_direct_fraction(self, crowd):
        unsafe = sum(1 for p in crowd if p.unsafe)
        assert 0.11 < unsafe / len(crowd) < 0.19

    def test_unsafe_devices_are_android_only(self, crowd):
        for p in crowd:
            if p.unsafe:
                assert p.os_family is OsFamily.ANDROID

    def test_carrier_ssids_ios_only(self, crowd):
        for p in crowd:
            if any(s in CARRIER_SSIDS for s in p.pnl):
                assert p.os_family is OsFamily.IOS

    def test_carrier_never_in_direct_probes(self, crowd):
        for p in crowd:
            assert not (set(p.direct_probe_ssids) & set(CARRIER_SSIDS))

    def test_unsafe_phones_probe_something(self, crowd):
        for p in crowd:
            if p.unsafe:
                assert len(p.direct_probe_ssids) >= 1
                assert all(s in p.pnl for s in p.direct_probe_ssids)
            else:
                assert p.direct_probe_ssids == ()

    def test_mean_pnl_size_sane(self, crowd):
        mean = np.mean([len(p.pnl) for p in crowd])
        assert 2.0 < mean < 6.0

    def test_direct_probe_open_rate_band(self, crowd):
        """~25-45 % of direct probers reveal an open entry — this is
        what pins KARMA's direct connect rate."""
        unsafe = [p for p in crowd if p.unsafe]
        rate = np.mean(
            [
                any(p.pnl[s].auto_joinable for s in p.direct_probe_ssids)
                for p in unsafe
            ]
        )
        assert 0.2 < rate < 0.5


class TestGroups:
    def test_solo_has_no_group(self, factory):
        person = factory.make_group(1)[0]
        assert person.group_id == -1

    def test_group_members_share_id(self, factory):
        group = factory.make_group(3)
        ids = {p.group_id for p in group}
        assert len(ids) == 1 and group[0].group_id >= 0

    def test_distinct_groups_distinct_ids(self, factory):
        a = factory.make_group(2)[0].group_id
        b = factory.make_group(2)[0].group_id
        assert a != b

    def test_bad_size_rejected(self, factory):
        with pytest.raises(ValueError):
            factory.make_group(0)

    def test_groups_share_more_open_ssids_than_strangers(self, crowd):
        """The social-correlation premise of the freshness buffer."""
        from collections import defaultdict
        import itertools

        by_group = defaultdict(list)
        for p in crowd:
            if p.group_id >= 0:
                by_group[p.group_id].append(p)
        pairs = []
        for members in by_group.values():
            pairs.extend(itertools.combinations(members, 2))
        pairs = pairs[:800]

        def overlap(a, b):
            return len(set(a.open_pnl_ssids()) & set(b.open_pnl_ssids()))

        group_overlap = np.mean([overlap(a, b) for a, b in pairs])
        solos = [p for p in crowd if p.group_id == -1][:800]
        stranger_overlap = np.mean(
            [overlap(a, b) for a, b in zip(solos[0::2], solos[1::2])]
        )
        assert group_overlap > 2 * stranger_overlap

    def test_group_marginal_adoption_not_inflated(self, crowd, city):
        """Group sharing must not raise members' marginal chain adoption."""
        pool = {p.ssid for p in city.public_pool}

        def rate(people):
            return np.mean([len(set(p.pnl) & pool) for p in people])

        grouped = [p for p in crowd if p.group_id >= 0]
        solo = [p for p in crowd if p.group_id == -1]
        assert rate(grouped) == pytest.approx(rate(solo), rel=0.35)


class TestGroupCore:
    def test_core_draws_respect_model(self):
        rng = np.random.default_rng(0)
        model = GroupModel(p_shared_home=1.0, p_hangout=0.0)
        core = draw_group_core(model, ["shop-a"], rng)
        assert len(core) == 1  # exactly the home, no hangouts

    def test_hangout_uses_local_pool(self):
        rng = np.random.default_rng(0)
        model = GroupModel(p_shared_home=0.0, p_hangout=1.0)
        for _ in range(50):
            core = draw_group_core(
                model, ["global"], rng, local_shop_ssids=["local"], p_local=1.0
            )
            assert all(p.ssid == "local" for p in core)

    def test_member_share_full_inheritance(self):
        rng = np.random.default_rng(0)
        model = GroupModel(p_inherit=1.0)
        core = [NetworkProfile("a"), NetworkProfile("b")]
        assert member_share(core, model, rng) == core

    def test_member_share_zero_inheritance(self):
        rng = np.random.default_rng(0)
        model = GroupModel(p_inherit=0.0)
        core = [NetworkProfile("a")]
        assert member_share(core, model, rng) == []
