"""Tests for per-client SSID selection (repro.core.selection)."""

import numpy as np

from repro.core.adaptive import AdaptiveSplit
from repro.core.config import CityHunterConfig
from repro.core.selection import (
    DIRECT_ATTRIBUTION_WINDOW_S,
    select_for_client,
    send_origin,
)
from repro.core.ssid_database import SsidEntry, WeightedSsidDatabase


def _db(n=120):
    db = WeightedSsidDatabase()
    for i in range(n):
        db.add(f"ssid-{i:03d}", float(n - i), "wigle")
    return db


def _select(db, tried=frozenset(), split=None, config=None, seed=0, now=0.0):
    split = split or AdaptiveSplit(total=40, initial_pb=28)
    config = config or CityHunterConfig()
    rng = np.random.default_rng(seed)
    return select_for_client(db, tried, split, config, rng, now=now)


class TestBurstComposition:
    def test_exactly_forty_when_db_is_deep(self):
        assert len(_select(_db())) == 40

    def test_no_duplicates(self):
        metas = _select(_db())
        ssids = [m.ssid for m in metas]
        assert len(ssids) == len(set(ssids))

    def test_never_resends_tried(self):
        db = _db()
        tried = {f"ssid-{i:03d}" for i in range(20)}
        metas = _select(db, tried)
        assert not tried & {m.ssid for m in metas}

    def test_pb_quota_honoured(self):
        metas = _select(_db())
        pb = [m for m in metas if m.bucket == "pb"]
        # No FB content yet: quota plus top-up fill, all weight-ordered.
        assert len(pb) >= 26

    def test_pb_in_weight_order(self):
        metas = _select(_db())
        pb = [m.ssid for m in metas if m.bucket == "pb"]
        head = [m for m in pb if m.startswith("ssid-0")]
        assert head == sorted(head)

    def test_ghost_picks_present_and_from_ghost_range(self):
        split = AdaptiveSplit(total=40, initial_pb=28)
        config = CityHunterConfig()
        metas = _select(_db(), split=split, config=config)
        ghosts = [m.ssid for m in metas if m.bucket == "pb_ghost"]
        assert len(ghosts) == config.ghost_picks
        # pb quota is 26; ghost pool is ranks 27..46 (0-indexed 26..45)
        # before top-up, so picks must come from that band.
        for g in ghosts:
            idx = int(g.split("-")[1])
            assert 26 <= idx < 26 + config.ghost_size

    def test_ghost_picks_vary_with_rng(self):
        db = _db()
        a = {m.ssid for m in _select(db, seed=1) if m.bucket == "pb_ghost"}
        b = {m.ssid for m in _select(db, seed=2) if m.bucket == "pb_ghost"}
        assert a != b

    def test_small_db_returns_everything_untried(self):
        db = _db(10)
        metas = _select(db)
        assert len(metas) == 10

    def test_exhausted_db_returns_empty(self):
        db = _db(10)
        tried = {e.ssid for e in db.ranked()}
        assert _select(db, tried) == []


class TestFreshnessBuffer:
    def _db_with_hits(self):
        db = _db()
        # Mid-tier entries got hits recently.
        db.record_hit("ssid-060", time=100.0)
        db.record_hit("ssid-070", time=101.0)
        return db

    def test_fresh_mid_tier_enters_fb(self):
        db = self._db_with_hits()
        metas = _select(db)
        fb = {m.ssid for m in metas if m.bucket == "fb"}
        assert {"ssid-060", "ssid-070"} <= fb

    def test_fb_leads_the_burst(self):
        db = self._db_with_hits()
        metas = _select(db)
        assert metas[0].bucket == "fb"

    def test_pb_member_not_double_selected_via_fb(self):
        db = _db()
        db.record_hit("ssid-000", time=100.0)  # top-weight, lives in PB
        metas = _select(db)
        hits = [m for m in metas if m.ssid == "ssid-000"]
        assert len(hits) == 1

    def test_fb_respects_tried(self):
        db = self._db_with_hits()
        metas = _select(db, tried={"ssid-060"})
        assert "ssid-060" not in {m.ssid for m in metas}

    def test_fb_ghost_draws_from_stale_hits(self):
        db = _db()
        config = CityHunterConfig()
        split = AdaptiveSplit(total=40, initial_pb=28)
        # More fresh hits than the FB quota: the overflow is the ghost.
        for i in range(60, 60 + split.fb_size + 10):
            db.record_hit(f"ssid-{i:03d}", time=float(i))
        metas = _select(db, split=split, config=config)
        fb_ghost = [m for m in metas if m.bucket == "fb_ghost"]
        assert len(fb_ghost) == config.ghost_picks


class TestOriginAttribution:
    def test_wigle_origin_by_default(self):
        entry = SsidEntry("x", 1.0, "wigle")
        assert send_origin(entry, now=0.0) == "wigle"

    def test_direct_origin_sticks(self):
        entry = SsidEntry("x", 1.0, "direct")
        assert send_origin(entry, now=1e9) == "direct"

    def test_recent_direct_probe_flips_to_direct(self):
        entry = SsidEntry("x", 1.0, "wigle")
        entry.last_direct_seen = 100.0
        now = 100.0 + DIRECT_ATTRIBUTION_WINDOW_S / 2
        assert send_origin(entry, now=now) == "direct"

    def test_stale_direct_probe_reverts_to_wigle(self):
        entry = SsidEntry("x", 1.0, "wigle")
        entry.last_direct_seen = 100.0
        assert send_origin(entry, now=101.0 + DIRECT_ATTRIBUTION_WINDOW_S) == "wigle"

    def test_carrier_origin_preserved(self):
        entry = SsidEntry("PCCW1x", 1.0, "carrier")
        assert send_origin(entry, now=0.0) == "carrier"
