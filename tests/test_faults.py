"""Tests for the deterministic fault-injection subsystem (repro.faults).

The load-bearing properties: every fault is a pure function of (plan,
seed) so two runs under one plan suffer bit-identical faults, and an
empty plan is byte-identical to no plan at all — the seed of every
fault draw lives in a dedicated ``faults.*`` stream that fault-free
runs never open.
"""

import numpy as np
import pytest

from repro.core.config import CityHunterConfig
from repro.core.hunter import CityHunter
from repro.core.seeding import SeedingStats, seed_database
from repro.dot11.frames import ProbeRequest, ProbeResponse
from repro.dot11.medium import Medium
from repro.experiments.attackers import make_attacker
from repro.experiments.calibration import venue_profile
from repro.experiments.runner import run_experiment
from repro.faults.gilbert import GilbertElliottChannel
from repro.faults.outages import OutageSchedule, OutageWindow
from repro.faults.plan import (
    FaultPlan,
    GilbertElliottParams,
    OutageParams,
    WigleFaultParams,
)
from repro.faults.wigle import ssid_fault_kind
from repro.geo.point import Point
from repro.sim.simulation import Simulation


class TestFaultPlan:
    def test_default_plan_is_empty(self):
        assert FaultPlan().empty
        assert not FaultPlan(channel=GilbertElliottParams()).empty
        assert not FaultPlan(worker_crashes=1).empty

    def test_dict_round_trip(self):
        plan = FaultPlan(
            seed=9,
            channel=GilbertElliottParams(p_bad=0.1),
            outages=OutageParams(rate_per_hour=6.0),
            wigle=WigleFaultParams(corrupt_fraction=0.2),
            worker_crashes=2,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"seed": 0, "gremlins": True})

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError):
            GilbertElliottParams(p_bad=1.5)
        with pytest.raises(ValueError):
            GilbertElliottParams(p_bad=0.0, p_good=0.0)
        with pytest.raises(ValueError):
            WigleFaultParams(corrupt_fraction=0.7, missing_fraction=0.6)
        with pytest.raises(ValueError):
            OutageParams(duration_mean_s=0.0)
        with pytest.raises(ValueError):
            FaultPlan(worker_crashes=-1)


def _loss_run_lengths(flags):
    """Lengths of maximal runs of consecutive True values."""
    runs, current = [], 0
    for flag in flags:
        if flag:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    return runs


class TestGilbertElliott:
    PARAMS = GilbertElliottParams(
        p_bad=0.02, p_good=0.25, loss_good=0.0, loss_bad=1.0
    )

    def test_observed_rate_tracks_marginal(self):
        chain = GilbertElliottChannel(self.PARAMS, np.random.default_rng(1))
        for _ in range(60_000):
            chain.lost()
        assert chain.attempts == 60_000
        assert chain.observed_loss_rate == pytest.approx(
            self.PARAMS.marginal_loss, rel=0.12
        )

    def test_losses_are_bursty_unlike_uniform(self):
        # Same marginal loss rate, radically different clustering: the
        # GE chain's mean loss-run length approaches 1/p_good while a
        # uniform coin at rate p has mean run length 1/(1-p) ~= 1.
        chain = GilbertElliottChannel(self.PARAMS, np.random.default_rng(2))
        ge_flags = [chain.lost() for _ in range(40_000)]
        rate = self.PARAMS.marginal_loss
        uniform_rng = np.random.default_rng(2)
        uni_flags = [uniform_rng.random() < rate for _ in range(40_000)]
        ge_runs = _loss_run_lengths(ge_flags)
        uni_runs = _loss_run_lengths(uni_flags)
        assert np.mean(ge_runs) > 2.5 * np.mean(uni_runs)
        assert np.mean(ge_runs) == pytest.approx(
            1.0 / self.PARAMS.p_good, rel=0.25
        )

    def test_deterministic_per_seed(self):
        a = GilbertElliottChannel(self.PARAMS, np.random.default_rng(7))
        b = GilbertElliottChannel(self.PARAMS, np.random.default_rng(7))
        assert [a.lost() for _ in range(500)] == [b.lost() for _ in range(500)]

    def test_stationary_properties(self):
        p = GilbertElliottParams(p_bad=0.1, p_good=0.4, loss_bad=0.5)
        assert p.stationary_bad == pytest.approx(0.2)
        assert p.marginal_loss == pytest.approx(0.1)


class TestOutageSchedule:
    def test_generate_is_deterministic(self):
        params = OutageParams(rate_per_hour=20.0, duration_mean_s=30.0)
        a = OutageSchedule.generate(params, 3600.0, np.random.default_rng(5))
        b = OutageSchedule.generate(params, 3600.0, np.random.default_rng(5))
        assert a.windows == b.windows
        assert len(a) > 0

    def test_windows_ordered_disjoint_and_onset_bounded(self):
        params = OutageParams(rate_per_hour=60.0, duration_mean_s=40.0)
        sched = OutageSchedule.generate(
            params, 1800.0, np.random.default_rng(3)
        )
        for w in sched.windows:
            assert 0.0 < w.start < 1800.0
            assert w.duration >= params.duration_min_s
        for a, b in zip(sched.windows, sched.windows[1:]):
            assert b.start >= a.end

    def test_down_at_half_open_windows(self):
        sched = OutageSchedule((OutageWindow(10.0, 20.0), OutageWindow(50.0, 55.0)))
        assert not sched.down_at(9.99)
        assert sched.down_at(10.0)
        assert sched.down_at(19.99)
        assert not sched.down_at(20.0)
        assert sched.down_at(52.0)
        assert sched.total_downtime == pytest.approx(15.0)

    def test_zero_rate_yields_no_outages(self):
        sched = OutageSchedule.generate(
            OutageParams(rate_per_hour=0.0), 3600.0, np.random.default_rng(0)
        )
        assert len(sched) == 0
        assert not sched.down_at(100.0)

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            OutageSchedule((OutageWindow(0.0, 10.0), OutageWindow(5.0, 15.0)))


class TestWigleFaultKind:
    PARAMS = WigleFaultParams(corrupt_fraction=0.2, missing_fraction=0.1)

    def test_pure_function_of_seed_and_ssid(self):
        for ssid in ("CoffeeNet", "PCCW1x", "#HKAirport Free WiFi"):
            assert ssid_fault_kind(self.PARAMS, 3, ssid) == ssid_fault_kind(
                self.PARAMS, 3, ssid
            )

    def test_fractions_roughly_honoured(self):
        ssids = [f"ssid-{i}" for i in range(5000)]
        kinds = [ssid_fault_kind(self.PARAMS, 11, s) for s in ssids]
        assert kinds.count("missing") == pytest.approx(500, rel=0.2)
        assert kinds.count("corrupt") == pytest.approx(1000, rel=0.2)

    def test_no_params_or_zero_fractions_never_fault(self):
        assert ssid_fault_kind(None, 0, "x") is None
        assert ssid_fault_kind(WigleFaultParams(), 0, "x") is None

    def test_seed_changes_the_victim_set(self):
        ssids = [f"ssid-{i}" for i in range(500)]
        a = {s for s in ssids if ssid_fault_kind(self.PARAMS, 1, s)}
        b = {s for s in ssids if ssid_fault_kind(self.PARAMS, 2, s)}
        assert a != b


class TestSeedingWithFaults:
    FAULTS = WigleFaultParams(corrupt_fraction=0.15, missing_fraction=0.1)

    def _seed(self, city, wigle, faults=None, fault_seed=0):
        stats = SeedingStats()
        config = CityHunterConfig(n_popular=60, n_nearby=20)
        center = city.venue("University Canteen").region.center
        db = seed_database(
            wigle, city.heatmap, center, config,
            faults=faults, fault_seed=fault_seed, stats=stats,
        )
        return db, stats

    def test_faulted_records_skipped_and_backfilled(self, city, wigle):
        db, stats = self._seed(city, wigle, faults=self.FAULTS, fault_seed=4)
        assert stats.total_skipped > 0
        assert stats.skipped_corrupt + stats.skipped_missing == stats.total_skipped
        for ssid in stats.skipped_ssids:
            assert ssid not in db
        assert stats.textgen_fallback == stats.total_skipped
        fallback = [e for e in db.ranked() if e.seed_class == "textgen-fallback"]
        assert len(fallback) == stats.textgen_fallback
        assert all(e.origin == "textgen" for e in fallback)

    def test_fault_seed_is_deterministic(self, city, wigle):
        db_a, stats_a = self._seed(city, wigle, faults=self.FAULTS, fault_seed=4)
        db_b, stats_b = self._seed(city, wigle, faults=self.FAULTS, fault_seed=4)
        assert stats_a.skipped_ssids == stats_b.skipped_ssids
        assert [e.ssid for e in db_a.ranked()] == [e.ssid for e in db_b.ranked()]

    def test_no_faults_leaves_stats_untouched(self, city, wigle):
        _, stats = self._seed(city, wigle)
        assert stats.total_skipped == 0
        assert stats.textgen_fallback == 0

    def test_carrier_ssids_survive_faults(self, city, wigle):
        # Carrier extension entries are typed in by the operator, not
        # read from the export: corruption cannot touch them.
        stats = SeedingStats()
        config = CityHunterConfig(carrier_ssids=("PCCW1x",))
        db = seed_database(
            wigle, city.heatmap, Point(0, 0), config,
            faults=WigleFaultParams(missing_fraction=1.0),
            fault_seed=1, stats=stats,
        )
        assert db.get("PCCW1x") is not None


class _Sniffer:
    def __init__(self, mac="02:00:00:00:00:99", where=Point(0, 0)):
        self.mac = mac
        self.where = where
        self.received = []

    def position_at(self, time):
        return self.where

    def receive(self, frame, time):
        self.received.append(frame)

    def receive_burst(self, responses, time, spacing):
        self.received.extend(responses)


class TestMediumBurstLoss:
    BLACKOUT = GilbertElliottParams(
        p_bad=1.0, p_good=0.0, loss_good=0.0, loss_bad=1.0
    )

    def _medium(self, burst_loss=None, fidelity="frame"):
        sim = Simulation(seed=3)
        medium = Medium(sim, fidelity=fidelity, burst_loss=burst_loss)
        a = _Sniffer("02:00:00:00:00:01", Point(0, 0))
        b = _Sniffer("02:00:00:00:00:02", Point(10, 0))
        medium.attach(a, 50.0)
        medium.attach(b, 50.0)
        return sim, medium, a, b

    def test_permanent_bad_state_drops_everything(self):
        sim, medium, a, b = self._medium(burst_loss=self.BLACKOUT)
        for _ in range(5):
            medium.transmit(a, ProbeRequest(a.mac))
        sim.run(1.0)
        assert b.received == []
        assert medium.fault_frames_lost == 5
        counters = sim.metrics.to_dict()["counters"]
        assert any(k.startswith("faults.frames_lost") for k in counters)

    def test_no_plan_never_counts_fault_losses(self):
        sim, medium, a, b = self._medium()
        medium.transmit(a, ProbeRequest(a.mac))
        sim.run(1.0)
        assert len(b.received) == 1
        assert medium.fault_frames_lost == 0
        assert medium.burst_loss is None

    def test_burst_fidelity_applies_channel_per_response(self):
        sim, medium, a, b = self._medium(
            burst_loss=self.BLACKOUT, fidelity="burst"
        )
        responses = [
            ProbeResponse(a.mac, b.mac, f"net-{i}", None) for i in range(8)
        ]
        medium.transmit_response_burst(a, responses)
        sim.run(1.0)
        assert b.received == []
        assert medium.fault_frames_lost == 8


class TestAttackerOutages:
    @pytest.fixture
    def hunter(self, city, wigle):
        sim = Simulation(seed=3)
        medium = Medium(sim)
        venue = city.venue("University Canteen")
        hunter = CityHunter(
            "02:aa:00:00:00:01", venue.region.center, medium,
            wigle=wigle, heatmap=city.heatmap,
        )
        hunter.install_outages(OutageSchedule((OutageWindow(10.0, 20.0),)))
        sniffer = _Sniffer(where=venue.region.center)
        medium.attach(sniffer, 100.0)
        sim.add_entity(hunter)
        sim.run(0.001)
        return sim, hunter, sniffer

    def _drain(self, sim, sniffer):
        sim.run(sim.now + 1.0)
        out = [f for f in sniffer.received if isinstance(f, ProbeResponse)]
        sniffer.received.clear()
        return out

    def test_probe_during_outage_is_dead_air(self, hunter):
        sim, hunter, sniffer = hunter
        hunter.receive(ProbeRequest(sniffer.mac), 15.0)
        assert self._drain(sim, sniffer) == []
        # The probe was never observed, so no session record either.
        assert sniffer.mac not in hunter.session.clients
        counters = sim.metrics.to_dict()["counters"]
        assert any(
            k.startswith("faults.outage_frames_dropped") for k in counters
        )

    def test_untried_lists_survive_outages(self, hunter):
        # The ISSUE's headline hazard: a dead NIC must not burn SSIDs
        # off a client's untried list for responses that never aired.
        sim, hunter, sniffer = hunter
        hunter.receive(ProbeRequest(sniffer.mac), 15.0)
        assert sniffer.mac not in hunter._tried
        hunter.receive(ProbeRequest(sniffer.mac), 25.0)
        sent = self._drain(sim, sniffer)
        assert len(sent) == hunter.config.burst_total
        assert len(hunter._tried[sniffer.mac]) == hunter.config.burst_total

    def test_outage_metrics_published_at_start(self, city, wigle):
        sim = Simulation(seed=3)
        medium = Medium(sim)
        hunter = CityHunter(
            "02:aa:00:00:00:01", Point(0, 0), medium,
            wigle=wigle, heatmap=city.heatmap,
        )
        hunter.install_outages(
            OutageSchedule((OutageWindow(5.0, 8.0), OutageWindow(30.0, 31.0)))
        )
        sim.add_entity(hunter)
        sim.run(0.001)
        counters = sim.metrics.to_dict()["counters"]
        assert counters["faults.outages"] == 2
        assert counters["faults.outage_downtime_s"] == pytest.approx(4.0)
        assert sum(
            1 for e in sim.events if e.get("kind") == "fault.outage"
        ) == 2

    def test_radio_down_without_schedule_is_false(self, city, wigle):
        sim = Simulation(seed=3)
        hunter = CityHunter(
            "02:aa:00:00:00:01", Point(0, 0), Medium(sim),
            wigle=wigle, heatmap=city.heatmap,
        )
        assert not hunter.radio_down(100.0)


class TestEmptyPlanEquivalence:
    def test_empty_plan_is_byte_identical_to_no_plan(self, city, wigle):
        # The acceptance bar: routing an *empty* FaultPlan through the
        # whole stack (medium, scenario builder, attacker factory,
        # seeding) must not perturb a single draw.
        def run(faults):
            result = run_experiment(
                city, wigle,
                make_attacker("cityhunter", city, wigle, faults=faults),
                venue_profile("canteen"),
                duration=150.0, seed=7, fidelity="burst", faults=faults,
            )
            return result.summary, result.people_spawned

        assert run(None) == run(FaultPlan(seed=99))

    def test_faulted_run_still_deterministic(self, city, wigle):
        plan = FaultPlan(
            seed=5,
            channel=GilbertElliottParams(),
            outages=OutageParams(rate_per_hour=24.0, duration_mean_s=15.0),
            wigle=WigleFaultParams(corrupt_fraction=0.1, missing_fraction=0.05),
        )

        def run():
            result = run_experiment(
                city, wigle,
                make_attacker("cityhunter", city, wigle, faults=plan),
                venue_profile("canteen"),
                duration=150.0, seed=7, fidelity="burst", faults=plan,
            )
            return result.summary

        assert run() == run()
