"""Handoff-protocol properties: boundary crossings change nothing.

The deterministic handoff contract, stated as properties:

* a walker that crosses a shard boundary mid-scan produces exactly the
  same untried-list / PB / FB evolution at every hunter as the
  unsharded run — ownership transfer is invisible to the workload;
* records applied at a barrier are processed in canonical
  :func:`~repro.sim.shards.handoff.sort_key` order even when several
  walkers cross simultaneously, so the applied-record log of any shard
  is batch-monotonic in the shard-count-invariant key.

Runs under hypothesis when installed (the ``dev`` extra); otherwise a
seeded-random sweep keeps the properties exercised.
"""

import pytest

from repro.sim.shards import ShardScenario, run_sharded
from repro.sim.shards.handoff import MIGRATE

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without dev extras
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)

SEED_SWEEP = list(range(8))


def _scenario(seed: int, open_share: float = 0.6) -> ShardScenario:
    # Sized so walkers actually cross stripe seams: the city is 360 m
    # (three district columns) and the fastest walkers cover ~324 m
    # within the duration, so both interior seams see traffic.
    return ShardScenario(
        stations=60,
        sensors=8,
        duration=180.0,
        seed=seed,
        size_m=360.0,
        open_share=open_share,
    )


def _crossers(scenario: ShardScenario, shards: int):
    """Walkers whose shard owner changes during their in-city window."""
    from repro.sim.shards.scenario import derive_walkers

    part = scenario.partition()
    batch = derive_walkers(scenario, "python")
    out = []
    for i in range(batch.n):
        t_in = batch.t0[i]
        t_out = min(batch.t_exit[i], scenario.duration)
        if t_out <= t_in:
            continue
        a = part.shard_of_point(*batch.position_of(i, t_in), shards)
        b = part.shard_of_point(*batch.position_of(i, t_out), shards)
        if a != b:
            out.append(i)
    return out


def _untried_evolution(result):
    """(sensor, walker) -> sorted sent items, plus each hunter's PB order
    and FB — the complete offering evolution, from collected states."""
    evolution = {}
    for sid, (weights, order, fb, sent) in sorted(result.hunter_states.items()):
        evolution[sid] = {
            "pb_order": order,
            "fb": fb,
            "weights": weights,
            "sent": {walker: items for walker, items in sent},
        }
    return evolution


# -- property drivers -----------------------------------------------------


def check_crossing_invisible(seed: int, shards: int) -> None:
    scenario = _scenario(seed)
    whole = run_sharded(scenario, shards=1)
    cut = run_sharded(scenario, shards=shards)
    assert cut.digest() == whole.digest()
    assert cut.walker_rows == whole.walker_rows
    assert _untried_evolution(cut) == _untried_evolution(whole)


def check_applied_log_batch_monotonic(seed: int, shards: int) -> None:
    scenario = _scenario(seed)
    result = run_sharded(scenario, shards=shards, log_handoffs=True)
    for shard, log in result.handoff_logs.items():
        runs = 0
        prev_kind = None
        prev_key = None
        for kind, t, district, walker, sensor in log:
            key = (t, district, walker, sensor)
            if kind == prev_kind:
                assert prev_key <= key, (
                    f"shard {shard}: {kind!r} batch out of order: "
                    f"{prev_key} then {key}"
                )
            else:
                runs += 1
            prev_kind, prev_key = kind, key
        assert runs > 0 or not log


# -- hypothesis harness ---------------------------------------------------


if HAVE_HYPOTHESIS:

    @needs_hypothesis
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6), shards=st.sampled_from([2, 3]))
    def test_boundary_crossing_is_invisible_property(seed, shards):
        check_crossing_invisible(seed, shards)


def test_boundary_crossing_is_invisible_sweep():
    for seed in SEED_SWEEP[:3]:
        check_crossing_invisible(seed, 2)


def test_crossings_actually_happen():
    """Guard against a vacuous property: the standard test scenario must
    contain walkers that cross the 2-shard seam mid-run, and some of
    them must have scanned (probed) while in the city."""
    scenario = _scenario(0)
    crossers = _crossers(scenario, 2)
    assert len(crossers) >= 5
    result = run_sharded(scenario, shards=2)
    rows = result.walker_rows
    scanned = [i for i in crossers if rows[i][4] > 0]
    assert scanned, "no boundary-crossing walker ever scanned"


def test_crossing_walker_keeps_dynamic_state():
    """A crosser's scans/probes/offers accumulate across the ownership
    transfer — the migrated DynamicRow is the same row the unsharded run
    produces."""
    scenario = _scenario(0)
    whole = run_sharded(scenario, shards=1)
    cut = run_sharded(scenario, shards=4)
    for i in _crossers(scenario, 4):
        assert cut.walker_rows[i] == whole.walker_rows[i]


# -- simultaneous-crossing ordering regression ----------------------------


def test_simultaneous_crossings_apply_in_sorted_order():
    """Many walkers migrating at the same barrier into the same shard
    must be applied in (time, district, walker) order, not arrival
    order; the applied-record log pins that."""
    scenario = ShardScenario(
        stations=200,
        sensors=12,
        duration=180.0,
        seed=5,
        size_m=360.0,
    )
    result = run_sharded(scenario, shards=2, log_handoffs=True)
    simultaneous = 0
    for shard, log in result.handoff_logs.items():
        migrations = [rec for rec in log if rec[0] == MIGRATE]
        assert migrations, f"shard {shard} never received a migration"
        by_time = {}
        for rec in migrations:
            by_time.setdefault(rec[1], []).append(rec)
        for t, batch in by_time.items():
            if len(batch) >= 2:
                simultaneous += 1
                assert batch == sorted(batch), (
                    f"shard {shard} applied simultaneous migrations at "
                    f"t={t} out of order"
                )
    assert simultaneous > 0, "scenario produced no simultaneous crossings"
    # And the cut run still reproduces the unsharded digest.
    assert result.digest() == run_sharded(scenario, shards=1).digest()


def test_applied_log_batch_monotonic_sweep():
    for seed in SEED_SWEEP[:3]:
        check_applied_log_batch_monotonic(seed, 2)
    check_applied_log_batch_monotonic(0, 4)
