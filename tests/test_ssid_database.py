"""Tests for the weighted SSID database (repro.core.ssid_database)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ssid_database import WeightedSsidDatabase


@pytest.fixture
def db():
    d = WeightedSsidDatabase()
    d.add("alpha", 100.0, "wigle")
    d.add("beta", 50.0, "wigle")
    d.add("gamma", 75.0, "direct")
    return d


class TestAdd:
    def test_add_and_contains(self, db):
        assert "alpha" in db
        assert "missing" not in db
        assert len(db) == 3

    def test_duplicate_keeps_stronger_weight(self, db):
        assert not db.add("beta", 80.0, "direct")
        assert db.get("beta").weight == 80.0
        assert db.get("beta").origin == "wigle"  # first origin sticks

    def test_duplicate_weaker_weight_ignored(self, db):
        db.add("alpha", 10.0, "direct")
        assert db.get("alpha").weight == 100.0

    def test_get_missing(self, db):
        assert db.get("missing") is None


class TestRanking:
    def test_ranked_by_weight_desc(self, db):
        assert [e.ssid for e in db.ranked()] == ["alpha", "gamma", "beta"]

    def test_rank_cache_invalidated_by_bump(self, db):
        db.ranked()
        db.bump_weight("beta", 100.0)
        assert [e.ssid for e in db.ranked()][0] == "beta"

    def test_bump_unknown_is_noop(self, db):
        db.bump_weight("missing", 10.0)
        assert len(db) == 3

    def test_ties_broken_deterministically(self):
        d = WeightedSsidDatabase()
        d.add("b", 10.0, "wigle")
        d.add("a", 10.0, "wigle")
        assert [e.ssid for e in d.ranked()] == ["a", "b"]


class TestHitsAndRecency:
    def test_record_hit_updates_entry(self, db):
        db.record_hit("beta", time=5.0, weight_bonus=8.0)
        e = db.get("beta")
        assert e.hits == 1
        assert e.last_hit == 5.0
        assert e.weight == 58.0

    def test_recency_most_recent_first(self, db):
        db.record_hit("alpha", 1.0)
        db.record_hit("beta", 2.0)
        db.record_hit("alpha", 3.0)
        assert db.recent_hits() == ["alpha", "beta"]

    def test_mimic_hits_excluded_from_recency(self, db):
        db.record_hit("alpha", 1.0, fresh=False)
        assert db.recent_hits() == []
        assert db.get("alpha").hits == 1  # still counted

    def test_trim_recency(self, db):
        for i, ssid in enumerate(["alpha", "beta", "gamma"]):
            db.record_hit(ssid, float(i))
        db.trim_recency(2)
        assert len(db.recent_hits()) == 2
        assert db.recent_hits() == ["gamma", "beta"]

    def test_hit_on_unknown_ssid_ignored(self, db):
        db.record_hit("missing", 1.0)
        assert db.recent_hits() == []

    def test_total_hits(self, db):
        db.record_hit("alpha", 1.0)
        db.record_hit("alpha", 2.0)
        db.record_hit("beta", 3.0)
        assert db.total_hits() == 3


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.text(alphabet="abcdef", min_size=1, max_size=6),
                st.floats(min_value=0.1, max_value=1e5),
            ),
            max_size=60,
        )
    )
    def test_ranked_always_sorted_and_complete(self, entries):
        db = WeightedSsidDatabase()
        for ssid, weight in entries:
            db.add(ssid, weight, "wigle")
        ranked = db.ranked()
        weights = [e.weight for e in ranked]
        assert weights == sorted(weights, reverse=True)
        assert len(ranked) == len(db)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=40))
    def test_recency_is_distinct_and_tracks_last_hit(self, hits):
        db = WeightedSsidDatabase()
        for s in "abcd":
            db.add(s, 1.0, "wigle")
        for i, s in enumerate(hits):
            db.record_hit(s, float(i))
        rec = db.recent_hits()
        assert len(rec) == len(set(rec))
        if hits:
            assert rec[0] == hits[-1]
        assert set(rec) == set(hits)
