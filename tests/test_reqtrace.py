"""Per-probe request tracing: ring, files, Chrome export, service wiring.

The request tracer answers *where did this probe's microseconds go* in
the serving path.  These tests pin its contract: a bounded observe-only
ring that drops the oldest spans and counts the loss, heartbeat-style
JSONL flush with rotation and torn-line-tolerant readers, a Chrome
trace-event export with one track per worker plus an ingress track and
flow arrows from enqueue to commit, and the ``RankingService`` wiring
that records all five pipeline stages without touching decisions.
"""

import json

import pytest

from repro.cli import main
from repro.obs.lineage import validate_chrome_trace
from repro.obs.reqtrace import (
    DEFAULT_MAX_RECORDS,
    STAGES,
    RequestTrace,
    load_reqtrace_dir,
    maybe_request_trace,
    read_reqtrace_records,
    req_trace_doc,
    reqtrace_dir,
    resolve_req_trace,
    resolve_req_trace_max,
    write_req_trace,
)
from repro.serve.core import RankingCore
from repro.serve.service import run_stream
from repro.serve.workload import synthetic_stream


def spans(n_seq=4, workers=(0, 1)):
    """Synthetic full-pipeline spans for ``n_seq`` sequenced events."""
    out = []
    t = 100.0
    for seq in range(n_seq):
        wid = workers[seq % len(workers)]
        out.append(
            {
                "stage": "enqueue",
                "seq": seq,
                "worker": None,
                "start": t,
                "dur": 0.0001,
                "mac": "02:5e:00:00:00:%02x" % seq,
                "etype": "probe",
            }
        )
        for i, stage in enumerate(("queue_wait", "commit_wait", "rank",
                                   "apply")):
            out.append(
                {
                    "stage": stage,
                    "seq": seq,
                    "worker": wid,
                    "start": t + 0.001 * (i + 1),
                    "dur": 0.0005,
                }
            )
        t += 0.01
    return out


class TestResolveAndRing:
    def test_resolve_env_and_explicit(self, monkeypatch):
        monkeypatch.delenv("REPRO_REQ_TRACE", raising=False)
        assert resolve_req_trace() is False
        monkeypatch.setenv("REPRO_REQ_TRACE", "1")
        assert resolve_req_trace() is True
        assert resolve_req_trace(False) is False  # explicit arg wins
        monkeypatch.setenv("REPRO_REQ_TRACE", "off")
        assert resolve_req_trace() is False
        assert resolve_req_trace(True) is True

    def test_resolve_max(self, monkeypatch):
        monkeypatch.delenv("REPRO_REQ_TRACE_MAX", raising=False)
        assert resolve_req_trace_max() == DEFAULT_MAX_RECORDS
        monkeypatch.setenv("REPRO_REQ_TRACE_MAX", "500")
        assert resolve_req_trace_max() == 500
        assert resolve_req_trace_max(7) == 7  # explicit arg wins
        monkeypatch.setenv("REPRO_REQ_TRACE_MAX", "garbage")
        assert resolve_req_trace_max() == DEFAULT_MAX_RECORDS
        assert resolve_req_trace_max(0) == 1  # capacity floor

    def test_maybe_request_trace_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_REQ_TRACE", raising=False)
        assert maybe_request_trace() is None
        assert maybe_request_trace(True) is not None
        monkeypatch.setenv("REPRO_REQ_TRACE", "1")
        assert isinstance(maybe_request_trace(), RequestTrace)

    def test_ring_drops_oldest_and_counts(self):
        trace = RequestTrace(max_records=3)
        for seq in range(5):
            trace.record("rank", seq, 0, 100.0 + seq, 0.001)
        assert len(trace) == 3
        assert trace.dropped == 2
        # the *recent* window survives — that's the one being debugged
        assert [r["seq"] for r in trace.records()] == [2, 3, 4]

    def test_record_skips_none_attrs(self):
        trace = RequestTrace(max_records=10)
        trace.record("enqueue", 0, None, 1.0, 0.0, mac="aa", etype=None)
        rec = trace.records()[0]
        assert rec["mac"] == "aa"
        assert "etype" not in rec
        assert rec["worker"] is None


class TestFilesAndReaders:
    def test_flush_rotates_and_reads_back(self, tmp_path):
        trace = RequestTrace(max_records=10)
        trace.record("rank", 0, 1, 5.0, 0.001)
        first = trace.flush(tmp_path)
        assert first.parent == reqtrace_dir(tmp_path)
        trace.record("rank", 1, 1, 6.0, 0.001)
        second = trace.flush(tmp_path)
        assert second == first
        assert first.with_name(first.name + ".old").exists()
        records = read_reqtrace_records(second)
        assert [r["seq"] for r in records] == [0, 1]

    def test_reader_skips_torn_and_foreign_lines(self, tmp_path):
        path = tmp_path / "reqtrace-1.jsonl"
        good = {"stage": "rank", "seq": 3, "worker": 0,
                "start": 1.0, "dur": 0.1}
        path.write_text(
            json.dumps(good) + "\n"
            + '{"not": "a span"}\n'
            + '{"stage": "rank", "seq": 4, "sta'  # torn final line
        )
        records = read_reqtrace_records(path)
        assert records == [good]

    def test_load_dir_aggregates_sorted(self, tmp_path):
        for pid, seq in ((111, 0), (222, 1)):
            p = tmp_path / ("reqtrace-%d.jsonl" % pid)
            p.write_text(json.dumps(
                {"stage": "rank", "seq": seq, "worker": 0,
                 "start": float(seq), "dur": 0.1}) + "\n")
        (tmp_path / "serve-111.jsonl").write_text("{}\n")  # not a trace
        records = load_reqtrace_dir(tmp_path)
        assert [r["seq"] for r in records] == [0, 1]


class TestChromeExport:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            req_trace_doc([])

    def test_doc_validates_with_tracks_and_flows(self):
        doc = req_trace_doc(spans(n_seq=4, workers=(0, 1)))
        validate_chrome_trace(doc)
        events = doc["traceEvents"]
        meta = {e["name"]: e for e in events if e["ph"] == "M"}
        assert meta["process_name"]["args"]["name"] == "repro-serve"
        names = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"ingress", "worker 0", "worker 1"}
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in xs} == set(STAGES)
        # ingress spans on tid 0, worker spans on wid + 1
        assert {e["tid"] for e in xs if e["name"] == "enqueue"} == {0}
        assert {e["tid"] for e in xs if e["name"] == "rank"} == {1, 2}
        # timestamps are normalised to the earliest span
        assert min(e["ts"] for e in xs) == 0.0

    def test_flow_arrows_pair_enqueue_to_commit(self):
        doc = req_trace_doc(spans(n_seq=3, workers=(0,)))
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 3
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}
        assert all(e["bp"] == "e" for e in finishes)
        assert {e["tid"] for e in starts} == {0}  # leave from ingress
        assert {e["tid"] for e in finishes} == {1}  # land on the worker

    def test_write_req_trace_roundtrip(self, tmp_path):
        out = tmp_path / "req_trace.json"
        write_req_trace(spans(n_seq=2), out)
        validate_chrome_trace(json.loads(out.read_text()))


class TestServiceWiring:
    @pytest.fixture()
    def artifact_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_REQ_TRACE", raising=False)
        return tmp_path

    def run(self, city, wigle, req_trace=None, workers=2, n_events=120):
        core = RankingCore.seeded(
            wigle, city.heatmap, city.venues[0].region.center, seed=0
        )
        events = synthetic_stream(8, n_events, seed=0)
        return run_stream(core, events, workers=workers,
                          req_trace=req_trace)

    def test_off_by_default(self, city, wigle, artifact_dir):
        service = self.run(city, wigle)
        assert service.reqtrace is None
        assert not list(reqtrace_dir(artifact_dir).glob("reqtrace-*"))

    def test_all_stages_recorded_and_flushed(
        self, city, wigle, artifact_dir
    ):
        service = self.run(city, wigle, req_trace=True)
        records = service.reqtrace.records()
        assert {r["stage"] for r in records} == set(STAGES)
        # one enqueue span per accepted event, stamped with the mac
        enq = [r for r in records if r["stage"] == "enqueue"]
        assert len(enq) == 120
        assert all(r["worker"] is None and "mac" in r for r in enq)
        # stage histograms observed alongside the spans
        for name in ("serve.queue_wait_us", "serve.commit_wait_us",
                     "serve.apply_us"):
            hist = service.metrics.histogram(name)
            assert hist is not None and hist.count > 0
        gauges = service.metrics.to_dict()["gauges"]
        assert gauges["reqtrace.records"] == len(records)
        assert gauges["reqtrace.dropped"] == 0
        # finish() flushed the ring; the export validates end to end
        flushed = load_reqtrace_dir(reqtrace_dir(artifact_dir))
        assert len(flushed) == len(records)
        doc = req_trace_doc(flushed)
        validate_chrome_trace(doc)
        assert any(e["ph"] == "s" for e in doc["traceEvents"])

    def test_ring_cap_respected_under_load(
        self, city, wigle, artifact_dir, monkeypatch
    ):
        monkeypatch.setenv("REPRO_REQ_TRACE", "1")
        monkeypatch.setenv("REPRO_REQ_TRACE_MAX", "50")
        service = self.run(city, wigle)  # env-gated this time
        assert len(service.reqtrace) == 50
        assert service.reqtrace.dropped > 0
        gauges = service.metrics.to_dict()["gauges"]
        assert gauges["reqtrace.cap"] == 50
        assert gauges["reqtrace.dropped"] == service.reqtrace.dropped


class TestServeTraceCli:
    def test_export_from_flushed_dir(self, tmp_path, capsys):
        directory = tmp_path / "telemetry"
        directory.mkdir()
        (directory / "reqtrace-7.jsonl").write_text(
            "".join(json.dumps(r) + "\n" for r in spans(n_seq=3))
        )
        out = tmp_path / "req_trace.json"
        rc = main(["obs", "serve-trace", "--dir", str(directory),
                   "--out", str(out)])
        assert rc == 0
        validate_chrome_trace(json.loads(out.read_text()))
        printed = capsys.readouterr().out
        assert "3 event(s)" in printed

    def test_empty_dir_fails(self, tmp_path, capsys):
        rc = main(["obs", "serve-trace", "--dir", str(tmp_path),
                   "--out", str(tmp_path / "x.json")])
        assert rc == 1
        assert "REPRO_REQ_TRACE=1" in capsys.readouterr().err
