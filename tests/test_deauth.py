"""Tests for the de-authentication extension (repro.attacks.deauth)."""

import pytest

from repro.analysis.session import AttackSession
from repro.attacks.deauth import DeauthEmitter
from repro.dot11.medium import Medium
from repro.experiments.attackers import make_cityhunter
from repro.experiments.scenarios import ScenarioConfig, build_scenario
from repro.geo.point import Point
from repro.sim.simulation import Simulation


class TestDeauthEmitter:
    def test_validation(self):
        sim = Simulation(seed=0)
        medium = Medium(sim)
        with pytest.raises(ValueError):
            DeauthEmitter(Point(0, 0), medium, ["02:aa:aa:aa:aa:aa"], period=0.0)
        with pytest.raises(ValueError):
            DeauthEmitter(Point(0, 0), medium, [])

    def test_emits_periodically_with_spoofed_src(self):
        sim = Simulation(seed=0)
        medium = Medium(sim)
        session = AttackSession()
        target = "02:aa:aa:aa:aa:aa"
        emitter = DeauthEmitter(
            Point(0, 0), medium, [target], period=5.0, session=session
        )

        captured = []

        class Listener:
            mac = "02:00:00:00:00:01"

            def position_at(self, t):
                return Point(1, 0)

            def receive(self, frame, t):
                captured.append(frame)

        medium.attach(Listener(), 50.0)
        sim.add_entity(emitter)
        sim.run(16.0)
        assert len(captured) == 3  # t=5, 10, 15
        assert all(f.src == target for f in captured)
        assert session.deauths_sent == 3


class TestDeauthEndToEnd:
    def test_deauth_recovers_camped_clients(self, city, wigle):
        """Sec. V-B: with everyone camped on the venue AP, plain
        City-Hunter starves; adding the deauth emitter frees clients and
        produces hits."""

        def run(with_deauth):
            config = ScenarioConfig(
                venue_name="University Canteen",
                mobility="static",
                people_per_min=40.0,
                duration=900.0,
                camped_share=1.0,
                include_camped=True,
                seed=6,
            )
            build = build_scenario(
                city, wigle, config, make_cityhunter(wigle, city.heatmap)
            )
            if with_deauth:
                emitter = DeauthEmitter(
                    build.venue.region.center,
                    build.medium,
                    [build.venue_ap.mac],
                    period=20.0,
                    session=build.attacker.session,
                )
                build.sim.add_entity(emitter)
            build.sim.run(930.0)
            camped = [
                p for p in build.phones
                if any(
                    s in p.person.pnl and p.person.pnl[s].auto_joinable
                    for s in build.venue.wifi_ssids
                )
            ]
            hits = sum(
                1
                for p in camped
                if p.connected_bssid == build.attacker.mac
            )
            return len(camped), hits

        total_plain, hits_plain = run(with_deauth=False)
        total_deauth, hits_deauth = run(with_deauth=True)
        assert total_plain > 0
        assert hits_plain == 0  # camped clients never probe
        assert hits_deauth > 0  # deauth forces re-scans the twin can win
