"""Property-based fuzzing of the selection machinery and the hunter.

These drive the core data structures through random sequences of the
operations a live deployment performs and assert the invariants the
attack's correctness rests on: bursts never exceed 40, never repeat an
SSID within a burst, never resend to the same client, and provenance
always matches the database.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.adaptive import AdaptiveSplit
from repro.core.config import CityHunterConfig
from repro.core.selection import select_for_client
from repro.core.ssid_database import WeightedSsidDatabase

ssid_strategy = st.text(
    alphabet="abcdefghij-", min_size=1, max_size=12
).filter(lambda s: s.strip())


@st.composite
def db_with_history(draw):
    """A database plus a plausible mutation history."""
    db = WeightedSsidDatabase()
    names = draw(
        st.lists(ssid_strategy, min_size=1, max_size=120, unique=True)
    )
    for i, name in enumerate(names):
        weight = draw(st.floats(min_value=0.5, max_value=300.0))
        origin = draw(st.sampled_from(["wigle", "direct", "carrier"]))
        db.add(name, weight, origin, time=float(i))
    # Random hit history.
    hits = draw(st.lists(st.sampled_from(names), max_size=40))
    for t, ssid in enumerate(hits):
        db.record_hit(ssid, float(t), weight_bonus=draw(
            st.floats(min_value=0.0, max_value=20.0)))
    return db, names


class TestSelectionProperties:
    @settings(max_examples=60, deadline=None)
    @given(db_with_history(), st.integers(0, 2**31), st.data())
    def test_burst_invariants(self, db_and_names, seed, data):
        db, names = db_and_names
        tried = set(
            data.draw(st.lists(st.sampled_from(names), max_size=60))
        )
        split = AdaptiveSplit(total=40, initial_pb=28)
        config = CityHunterConfig()
        rng = np.random.default_rng(seed)
        metas = select_for_client(db, tried, split, config, rng, now=100.0)

        ssids = [m.ssid for m in metas]
        # Never more than the reception ceiling.
        assert len(metas) <= config.burst_total
        # Never a duplicate within one burst.
        assert len(ssids) == len(set(ssids))
        # Never an SSID already tried on this client.
        assert not set(ssids) & tried
        # Everything sent exists in the database.
        assert all(db.get(s) is not None for s in ssids)
        # If the burst is short, the database really was exhausted.
        if len(metas) < config.burst_total:
            untried = [e for e in db.ranked() if e.ssid not in tried]
            assert len(metas) == len(untried)

    @settings(max_examples=40, deadline=None)
    @given(db_with_history(), st.integers(0, 2**31))
    def test_buckets_are_legal(self, db_and_names, seed):
        db, _ = db_and_names
        split = AdaptiveSplit(total=40, initial_pb=28)
        config = CityHunterConfig()
        metas = select_for_client(
            db, frozenset(), split, config, np.random.default_rng(seed), now=0.0
        )
        legal = {"pb", "fb", "pb_ghost", "fb_ghost"}
        assert all(m.bucket in legal for m in metas)
        assert sum(1 for m in metas if m.bucket == "pb_ghost") <= config.ghost_picks
        assert sum(1 for m in metas if m.bucket == "fb_ghost") <= config.ghost_picks

    @settings(max_examples=40, deadline=None)
    @given(db_with_history(), st.integers(0, 2**31))
    def test_repeated_selection_exhausts_exactly_once(self, db_and_names, seed):
        """Sweeping a client through repeated scans sends every SSID
        exactly once (the untried-list guarantee)."""
        db, _ = db_and_names
        split = AdaptiveSplit(total=40, initial_pb=28)
        config = CityHunterConfig()
        rng = np.random.default_rng(seed)
        tried = set()
        sent_total = []
        for _ in range(len(db) // 40 + 2):
            metas = select_for_client(db, tried, split, config, rng, now=0.0)
            sent_total.extend(m.ssid for m in metas)
            tried.update(m.ssid for m in metas)
        assert len(sent_total) == len(set(sent_total)) == len(db)


class TestHunterFuzz:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31), data=st.data())
    def test_random_probe_sequences_keep_invariants(self, city, wigle, seed, data):
        """Throw a random interleaving of probes/associations at the
        hunter; bookkeeping must stay consistent."""
        from repro.core.hunter import CityHunter
        from repro.dot11.frames import AssocRequest, ProbeRequest
        from repro.dot11.medium import Medium
        from repro.sim.simulation import Simulation

        sim = Simulation(seed=seed)
        medium = Medium(sim, fidelity="burst")
        venue = city.venue("University Canteen")
        hunter = CityHunter(
            "02:aa:00:00:00:01", venue.region.center, medium,
            wigle=wigle, heatmap=city.heatmap,
        )
        sim.add_entity(hunter)
        sim.run(0.001)

        clients = [f"02:0{i}:00:00:00:01" for i in range(4)]
        events = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(clients),
                    st.sampled_from(["broadcast", "direct", "assoc"]),
                ),
                max_size=30,
            )
        )
        for mac, kind in events:
            now = sim.now
            if kind == "broadcast":
                hunter.receive(ProbeRequest(mac), now)
            elif kind == "direct":
                hunter.receive(ProbeRequest(mac, "SomeHiddenNet"), now)
            else:
                # Associate to something actually offered, when possible.
                prov = hunter.session._provenance.get(mac, {})
                if prov:
                    ssid = next(iter(prov))
                    hunter.receive(AssocRequest(mac, hunter.mac, ssid), now)
            sim.run(sim.now + 0.5)

        # Invariants over the whole run:
        for mac, tried in hunter._tried.items():
            assert len(tried) == hunter.session.tried_count(mac)
        for rec in hunter.session.records():
            if rec.connected and rec.hit_bucket != "mimic":
                assert rec.hit_ssid in hunter.db
        assert (
            hunter.split.pb_size + hunter.split.fb_size
            == hunter.config.burst_total
        )
