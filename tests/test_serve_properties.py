"""Property-based fuzzing of the serving core under interleaved clients.

Random multi-client event streams drive :class:`RankingCore` directly
(the service commits through it in ingress order, so core properties
are service properties) and assert the invariants the attack's
correctness rests on, now stated at the serving boundary:

* no SSID is ever re-sent to the same MAC across bursts;
* every burst respects the cap, is duplicate-free, and takes at most
  ``ghost_picks`` SSIDs from each ghost list;
* a broadcast-only client's decisions don't depend on other clients'
  interleaved broadcast traffic (client isolation; stated with
  ``ghost_picks=0`` because ghost picks deliberately consume a shared
  RNG stream, and only for broadcast interleavings because feedback
  and direct probes mutate the shared database *by design* — that
  coupling is the attack learning).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CityHunterConfig
from repro.serve.core import RankingCore
from repro.serve.events import FeedbackEvent, ProbeEvent
from repro.serve.workload import client_mac

N_CLIENTS = 5


def _ops():
    """One abstract op: (client, kind, selector) with kind-specific use."""
    return st.lists(
        st.tuples(
            st.integers(0, N_CLIENTS - 1),
            st.sampled_from(["broadcast", "broadcast", "broadcast",
                             "direct", "feedback"]),
            st.integers(0, 10_000),
        ),
        min_size=1,
        max_size=80,
    )


def _apply_ops(core, ops, start_time=0.0):
    """Replay abstract ops as concrete events, sim-faithfully.

    Direct probes draw from a small name pool (repeats exercise the
    weight-bump path); feedback picks an SSID actually offered to that
    client, as the medium guarantees — a client can only associate to a
    network it heard advertised.
    """
    offered = {}
    decisions = []
    t = start_time
    for client, kind, sel in ops:
        mac = client_mac(client)
        t = round(t + 0.25, 6)
        if kind == "direct":
            event = ProbeEvent(mac, t, "home-net-%d" % (sel % 12))
        elif kind == "feedback":
            pool = offered.get(mac)
            if not pool:
                continue
            event = FeedbackEvent(mac, t, pool[sel % len(pool)])
        else:
            event = ProbeEvent(mac, t)
        decision = core.handle(event)
        if decision is not None:
            decisions.append(decision)
            if decision.kind == "burst":
                offered.setdefault(mac, []).extend(
                    m.ssid for m in decision.ssids
                )
    return decisions


class TestServeProperties:
    @settings(max_examples=25, deadline=None)
    @given(_ops(), st.integers(0, 2**31))
    def test_no_ssid_resent_to_same_mac(self, city, wigle, ops, seed):
        core = RankingCore.seeded(
            wigle, city.heatmap, city.venues[0].region.center, seed=seed
        )
        decisions = _apply_ops(core, ops)
        sent = {}
        for d in decisions:
            if d.kind != "burst":
                continue  # mimics legitimately repeat (KARMA reflection)
            seen = sent.setdefault(d.mac, set())
            burst = {m.ssid for m in d.ssids}
            assert not (burst & seen), (
                "SSIDs re-sent to %s: %r" % (d.mac, burst & seen)
            )
            seen |= burst

    @settings(max_examples=25, deadline=None)
    @given(_ops(), st.integers(0, 2**31))
    def test_burst_caps_and_ghost_slots(self, city, wigle, ops, seed):
        config = CityHunterConfig()
        core = RankingCore.seeded(
            wigle,
            city.heatmap,
            city.venues[0].region.center,
            config=config,
            seed=seed,
        )
        for d in _apply_ops(core, ops):
            ssids = [m.ssid for m in d.ssids]
            assert len(ssids) == len(set(ssids)), "duplicate SSID in burst"
            if d.kind != "burst":
                continue
            assert len(ssids) <= config.burst_total
            buckets = [m.bucket for m in d.ssids]
            assert buckets.count("pb_ghost") <= config.ghost_picks
            assert buckets.count("fb_ghost") <= config.ghost_picks
            assert set(buckets) <= {"pb", "fb", "pb_ghost", "fb_ghost"}

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.integers(1, N_CLIENTS - 1), min_size=1, max_size=40),
        st.lists(st.booleans(), min_size=40, max_size=40),
        st.integers(0, 2**31),
    )
    def test_client_isolation_under_broadcast_interleaving(
        self, city, wigle, others, gaps, seed
    ):
        """Client 0's bursts don't shift when spectators probe between.

        ``others`` is a stream of broadcast probes from other clients;
        ``gaps`` decides after which of client 0's probes they are
        injected.  With ``ghost_picks=0`` (no shared-RNG coupling) and
        broadcast-only spectators (no shared-DB mutation), client 0
        must receive the identical burst sequence either way.
        """
        config = CityHunterConfig(ghost_picks=0)
        position = city.venues[0].region.center

        def run(interleave):
            core = RankingCore.seeded(
                wigle, city.heatmap, position, config=config, seed=seed
            )
            decisions = []
            t = 0.0
            spectators = list(others)
            for i in range(12):
                t = round(t + 1.0, 6)
                d = core.handle(ProbeEvent(client_mac(0), t))
                if d is not None:
                    decisions.append(d.as_row())
                if interleave and gaps[i % len(gaps)]:
                    while spectators:
                        t = round(t + 0.1, 6)
                        core.handle(ProbeEvent(client_mac(spectators.pop()), t))
                        break
            return decisions

        alone = run(interleave=False)
        crowded = run(interleave=True)
        # Timestamps differ (the spectators advance time), so compare
        # the payload: kind + SSID metadata sequence per burst.
        strip = lambda rows: [[r[0], r[2], r[3]] for r in rows]  # noqa: E731
        assert strip(alone) == strip(crowded)
