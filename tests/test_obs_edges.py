"""Edge-case coverage for repro.obs.spans and repro.obs.events.

The satellite task from ISSUE 5: nested and unclosed spans, the event
sink at exactly its cap, and merges of empty registries — the corners
the main obs tests skip over.
"""

import pytest

from repro.obs.events import EventSink, read_jsonl, write_events_jsonl
from repro.obs.registry import MetricsRegistry, merge_snapshots
from repro.obs.spans import NullSpan, Span, maybe_span, span
from repro.sim.simulation import Simulation


class TestSpanEdges:
    def test_nested_spans_account_independently(self):
        sim = Simulation(seed=1)
        with span(sim, "outer"):
            sim.at(1.0, lambda: None)
            sim.run(2.0)
            with span(sim, "inner"):
                sim.at(1.0, lambda: None)
                sim.run(5.0)
        c = sim.metrics.to_dict()["counters"]
        assert c["span.outer.count"] == 1
        assert c["span.inner.count"] == 1
        # Inner covers [2, 5]; outer covers all of [0, 5].
        assert c["span.inner.sim_s"] == pytest.approx(3.0)
        assert c["span.outer.sim_s"] == pytest.approx(5.0)
        assert c["span.outer.events"] == 2
        assert c["span.inner.events"] == 1

    def test_same_name_reentry_accumulates(self):
        sim = Simulation(seed=1)
        for _ in range(3):
            with span(sim, "phase"):
                pass
        assert sim.metrics.to_dict()["counters"]["span.phase.count"] == 3

    def test_unclosed_span_records_nothing(self):
        """A span abandoned without __exit__ (crashed phase) must leave
        the registry untouched — no half-written metrics."""
        sim = Simulation(seed=1)
        s = Span(sim, "crashed")
        s.__enter__()
        counters = sim.metrics.to_dict()["counters"]
        assert not any(k.startswith("span.crashed") for k in counters)
        assert sim.events.of_kind("span") == []

    def test_span_closes_on_exception(self):
        sim = Simulation(seed=1)
        with pytest.raises(RuntimeError):
            with span(sim, "boom"):
                raise RuntimeError("phase died")
        # __exit__ still ran: the span is recorded despite the raise.
        assert sim.metrics.to_dict()["counters"]["span.boom.count"] == 1
        assert len(sim.events.of_kind("span")) == 1

    def test_span_event_carries_window(self):
        sim = Simulation(seed=1)
        sim.at(3.0, lambda: None)
        with span(sim, "w"):
            sim.run(4.0)
        # sim.run emits its own internal spans; pick ours by name.
        event = next(
            e for e in sim.events.of_kind("span") if e["name"] == "w"
        )
        assert event["sim_start"] == 0.0
        assert event["sim_s"] == pytest.approx(4.0)

    def test_maybe_span_without_sim(self):
        ctx = maybe_span(None, "x")
        assert isinstance(ctx, NullSpan)
        with ctx:
            pass  # inert: nothing to assert beyond not raising

    def test_maybe_span_with_sim(self):
        sim = Simulation(seed=1)
        with maybe_span(sim, "y"):
            pass
        assert sim.metrics.to_dict()["counters"]["span.y.count"] == 1


class TestEventSinkEdges:
    def test_fill_to_exactly_cap(self):
        sink = EventSink(max_events=4)
        for i in range(4):
            sink.emit(float(i), "e")
        assert len(sink) == 4
        assert sink.dropped == 0
        assert [e["time"] for e in sink.records()] == [0.0, 1.0, 2.0, 3.0]

    def test_one_past_cap_evicts_oldest(self):
        sink = EventSink(max_events=4)
        for i in range(5):
            sink.emit(float(i), "e")
        assert len(sink) == 4
        assert sink.dropped == 1
        assert [e["time"] for e in sink.records()] == [1.0, 2.0, 3.0, 4.0]

    def test_cap_of_one(self):
        sink = EventSink(max_events=1)
        sink.emit(0.0, "a")
        sink.emit(1.0, "b")
        assert len(sink) == 1
        assert sink.records()[0]["kind"] == "b"
        assert sink.dropped == 1

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            EventSink(max_events=0)

    def test_disabled_sink_drops_silently(self):
        sink = EventSink(enabled=False)
        sink.emit(0.0, "e")
        assert len(sink) == 0
        assert sink.dropped == 0

    def test_write_jsonl_empty_sink(self, tmp_path):
        sink = EventSink()
        path = sink.write_jsonl(tmp_path / "events.jsonl")
        assert path.read_text() == ""
        assert read_jsonl(path) == []

    def test_append_with_run_tag(self, tmp_path):
        path = tmp_path / "events.jsonl"
        n = write_events_jsonl([{"time": 0.0, "kind": "a"}], path, run="r1")
        n += write_events_jsonl([{"time": 1.0, "kind": "b"}], path, run="r2")
        assert n == 2
        events = read_jsonl(path)
        assert [e["run"] for e in events] == ["r1", "r2"]


class TestRegistryMergeEdges:
    def test_merge_two_empty_registries(self):
        merged = MetricsRegistry().merge(MetricsRegistry())
        doc = merged.to_dict()
        assert doc["counters"] == {}
        assert doc["gauges"] == {}
        assert doc["histograms"] == {}
        assert doc["series"] == {}

    def test_merge_empty_into_populated(self):
        a = MetricsRegistry()
        a.inc("hits", 3)
        merged = a.merge(MetricsRegistry())
        assert merged.to_dict()["counters"]["hits"] == 3

    def test_merge_populated_into_empty(self):
        b = MetricsRegistry()
        b.inc("hits", 3)
        b.observe("latency", 0.5)
        merged = MetricsRegistry().merge(b)
        doc = merged.to_dict()
        assert doc["counters"]["hits"] == 3
        assert doc["histograms"]["latency"]["count"] == 1

    def test_merge_snapshots_of_empties(self):
        empty = MetricsRegistry().to_dict()
        merged = merge_snapshots([empty, empty])
        assert merged["counters"] == {}

    def test_merge_snapshots_no_input(self):
        merged = merge_snapshots([])
        assert merged["counters"] == {}


class TestEventFilters:
    """The repro obs events --kind/--since/--until satellite."""

    EVENTS = [
        {"time": 0.5, "kind": "span", "name": "a"},
        {"time": 1.5, "kind": "swap", "name": "b"},
        {"time": 2.5, "kind": "span", "name": "c"},
        {"kind": "untimed"},
    ]

    def test_no_filters_keeps_everything(self):
        from repro.analysis.observability import filter_events

        assert filter_events(list(self.EVENTS)) == self.EVENTS

    def test_kind_filter(self):
        from repro.analysis.observability import filter_events

        out = filter_events(list(self.EVENTS), kind="span")
        assert [e["name"] for e in out] == ["a", "c"]

    def test_window_is_half_open(self):
        from repro.analysis.observability import filter_events

        out = filter_events(list(self.EVENTS), since=0.5, until=2.5)
        assert [e["name"] for e in out] == ["a", "b"]

    def test_window_drops_untimed_events(self):
        from repro.analysis.observability import filter_events

        out = filter_events(list(self.EVENTS), since=0.0)
        assert all("time" in e for e in out)

    def test_kind_and_window_compose(self):
        from repro.analysis.observability import filter_events

        out = filter_events(list(self.EVENTS), kind="span", since=1.0)
        assert [e["name"] for e in out] == ["c"]

    def test_cli_filters(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.obs.registry import MetricsRegistry

        snap = MetricsRegistry().to_dict()
        doc = {
            "schema": "repro.metrics/v1",
            "workers": 1,
            "run_count": 1,
            "merged": snap,
            "runs": [
                {"tag": "t0", "attacker": "cityhunter", "seed": 1,
                 "metrics": snap, "events": self.EVENTS},
            ],
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(doc))
        assert main(
            ["obs", "events", "--path", str(path), "--kind", "span",
             "--since", "1.0", "--until", "3.0"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "c"


class TestSinkStatusSurface:
    """The trace/event cap-status satellite in repro obs summarize."""

    def _doc(self, dropped=0.0):
        from repro.obs.registry import MetricsRegistry

        reg = MetricsRegistry()
        reg.gauge_set("trace.records", 10)
        reg.gauge_set("trace.dropped", dropped)
        reg.gauge_set("trace.cap", 100)
        reg.gauge_set("events.buffered", 5)
        reg.gauge_set("events.dropped", 0)
        reg.gauge_set("events.cap", 50)
        snap = reg.to_dict()
        return {
            "schema": "repro.metrics/v1",
            "workers": 1,
            "run_count": 2,
            "merged": snap,
            "runs": [
                {"tag": "t0", "attacker": "karma", "seed": 1,
                 "metrics": snap, "events": []},
                {"tag": "t1", "attacker": "karma", "seed": 2,
                 "metrics": snap, "events": []},
            ],
        }

    def test_sink_status_sums_runs(self):
        from repro.analysis.observability import sink_status

        status = sink_status(self._doc(dropped=3.0))
        assert status["trace.records"] == 20.0
        assert status["trace.dropped"] == 6.0
        assert status["trace.cap"] == 100.0
        assert status["events.cap"] == 50.0

    def test_sink_status_handles_old_artefacts(self):
        from repro.analysis.observability import sink_status

        status = sink_status(
            {"merged": {"gauges": {}}, "runs": [{"metrics": {"gauges": {}}}]}
        )
        assert status["trace.records"] == 0.0
        assert status["trace.cap"] == 0.0

    def test_summarize_prints_caps(self, tmp_path, capsys):
        import json

        from repro.cli import main

        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(self._doc()))
        assert main(["obs", "summarize", "--path", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace ring: 20 records, 0 dropped (cap 100 per run)" in out
        assert "event sink: 10 buffered, 0 dropped (cap 50 per run)" in out
        assert "TRUNCATED" not in out

    def test_summarize_flags_truncation(self, tmp_path, capsys):
        import json

        from repro.cli import main

        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(self._doc(dropped=7.0)))
        assert main(["obs", "summarize", "--path", str(path)]) == 0
        assert "TRUNCATED (raise REPRO_TRACE_MAX)" in capsys.readouterr().out


class TestTimingsEmbedding:
    """The timings-into-metrics.json satellite (timings.json kept)."""

    def test_metrics_doc_embeds_timings(self):
        from repro.experiments.parallel import metrics_doc

        doc = metrics_doc([], workers=2, timings={"total_wall_s": 1.5})
        assert doc["timings"] == {"total_wall_s": 1.5}

    def test_metrics_doc_without_timings(self):
        from repro.experiments.parallel import metrics_doc

        assert "timings" not in metrics_doc([], workers=2)

    def test_timings_stripped_from_canonical_form(self):
        from repro.experiments.parallel import metrics_doc
        from repro.obs.golden import canonical_metrics_doc, metrics_digest

        plain = metrics_doc([], workers=1)
        timed = metrics_doc([], workers=1, timings={"total_wall_s": 9.9})
        assert "timings" not in canonical_metrics_doc(timed)
        assert metrics_digest(plain) == metrics_digest(timed)
