"""Tests for the table/figure generators (repro.experiments)."""

import pytest

from repro.experiments.figures import (
    fig1,
    fig2,
    fig4,
    fig5_venue,
)
from repro.experiments.tables import (
    table1,
    table2,
    table3,
    table4,
    wigle_share_of_broadcast_hits,
)


class TestTable4:
    def test_exact_paper_rankings(self):
        result = table4()
        count_column = [row[1] for row in result.rows]
        heat_column = [row[2] for row in result.rows]
        assert count_column == [
            "-Free HKBN Wi-Fi-",
            "7-Eleven Free Wifi",
            "-Circle K Free Wi-Fi-",
            "CSL",
            "CMCC-WEB",
        ]
        assert heat_column == [
            "Free Public WiFi",
            "#HKAirport Free WiFi",
            "-Free HKBN Wi-Fi-",
            "FREE 3Y5 AdWiFi",
            "7-Eleven Free Wifi",
        ]

    def test_render(self):
        out = table4().render()
        assert "Table IV" in out
        assert "#HKAirport Free WiFi" in out


class TestShortTables:
    """Short-duration smoke runs of the table generators (the full
    30-minute versions are exercised by the benchmarks and the band
    tests)."""

    def test_table1_structure(self):
        result = table1(duration=240.0)
        assert [row[0] for row in result.rows] == ["KARMA", "MANA"]
        assert "0.0%" in result.rows[0][5]  # KARMA h_b = 0
        out = result.render()
        assert "Table I" in out

    def test_table2_structure(self):
        result = table2(duration=240.0)
        assert [row[0] for row in result.rows] == ["MANA", "City-Hunter"]
        share = wigle_share_of_broadcast_hits(result.runs[1])
        assert 0.0 <= share <= 1.0

    def test_table3_structure(self):
        result = table3(duration=240.0)
        assert result.rows[0][0] == "Subway Passage"
        assert len(result.runs) == 1


class TestFigures:
    def test_fig1_series_shapes(self):
        result = fig1(duration=600.0)
        assert len(result.db_size) == 5  # 2-min steps over 10 min
        assert len(result.windows) == 5
        sizes = [s for _, s in result.db_size]
        assert sizes == sorted(sizes)  # DB only grows
        assert "Fig 1(a)" in result.render()

    def test_fig2_histogram(self):
        result = fig2(duration=600.0)
        hist = result.passage_sent_histogram
        assert hist.total > 50
        # Walkers overwhelmingly see just one 40-burst.
        assert hist.fraction(40) > 0.5
        assert "Fig 2(b)" in result.render()

    def test_fig4_names_hot_venues(self):
        result = fig4()
        names = [name for name, _, _ in result.hottest_venues]
        assert "International Airport" in names
        assert "iSQUARE Mall" in names[:4]
        out = result.render()
        assert "Fig 4" in out and len(out.splitlines()) > 10

    def test_fig4_airport_glows_against_lantau(self):
        """The paper's Fig. 4(b) observation: the airport is the hot
        spot of its otherwise empty island."""
        result = fig4()
        contrast = {n: c for n, _, c in result.hottest_venues}
        assert contrast["International Airport"] > 20

    def test_fig5_single_slot(self):
        result = fig5_venue("canteen", slots=[4], slot_duration=600.0)
        assert len(result.slots) == 1
        slot = result.slots[0]
        assert slot.label == "12pm-1pm"
        assert slot.rush
        assert slot.summary.total_clients > 50
        assert 0 <= slot.h_b <= 1
        assert "Fig 5" in result.render()
        assert "Fig 6" in result.render_breakdown()

    def test_fig5_average(self):
        result = fig5_venue("passage", slots=[2, 3], slot_duration=300.0)
        avg = result.average_h_b()
        assert avg == pytest.approx(
            (result.slots[0].h_b + result.slots[1].h_b) / 2
        )
