"""Co-deployed attackers (the paper's actual Table I setup).

The paper ran KARMA and MANA *simultaneously*, ~40 m apart, "to avoid
any interferences".  The medium supports this directly: multiple rogue
APs attach to the same radio space, and clients simply join whichever
matching response arrives first.
"""

from repro.attacks.mana import ManaAttacker
from repro.core.hunter import CityHunter
from repro.dot11.mac import random_ap_mac
from repro.experiments.attackers import make_karma
from repro.experiments.scenarios import ScenarioConfig, build_scenario
from repro.geo.point import Point


def _co_deploy(city, registry, second_attacker_cls, offset=40.0,
               duration=900.0, **second_kwargs):
    """KARMA at the venue centre plus a second attacker ``offset`` m away."""
    config = ScenarioConfig(
        venue_name="University Canteen",
        mobility="static",
        people_per_min=25.0,
        duration=duration,
        seed=9,
    )
    build = build_scenario(city, registry, config, make_karma())
    center = build.venue.region.center
    second = second_attacker_cls(
        random_ap_mac(build.sim.rngs.stream("attacker2_mac")),
        Point(center.x + offset, center.y),
        build.medium,
        **second_kwargs,
    )
    build.sim.add_entity(second)
    build.sim.run(duration + 30.0)
    return build, second


class TestCoDeployment:
    def test_both_attackers_observe_clients(self, city, wigle):
        build, mana = _co_deploy(city, wigle, ManaAttacker)
        karma = build.attacker
        assert len(karma.session.clients) > 50
        assert len(mana.session.clients) > 50

    def test_both_attackers_score_hits(self, city, wigle):
        build, mana = _co_deploy(city, wigle, ManaAttacker)
        karma = build.attacker
        karma_hits = sum(1 for r in karma.session.records() if r.connected)
        mana_hits = sum(1 for r in mana.session.records() if r.connected)
        assert karma_hits > 0
        assert mana_hits > 0

    def test_one_client_connects_to_one_attacker(self, city, wigle):
        """A phone associates once; both sessions must not claim the
        same client as connected."""
        build, mana = _co_deploy(city, wigle, ManaAttacker)
        karma = build.attacker
        karma_connected = {
            r.mac for r in karma.session.records() if r.connected
        }
        mana_connected = {r.mac for r in mana.session.records() if r.connected}
        assert not karma_connected & mana_connected

    def test_cityhunter_outcompetes_karma_next_door(self, city, wigle):
        """A City-Hunter 40 m from a KARMA attacker still dominates —
        broadcast clients are simply invisible to KARMA."""
        build, hunter = _co_deploy(
            city,
            wigle,
            CityHunter,
            wigle=wigle,
            heatmap=city.heatmap,
        )
        karma = build.attacker
        hunter_broadcast_hits = sum(
            1
            for r in hunter.session.broadcast_clients()
            if r.connected
        )
        karma_broadcast_hits = sum(
            1
            for r in karma.session.broadcast_clients()
            if r.connected
        )
        assert karma_broadcast_hits == 0
        assert hunter_broadcast_hits > 10
