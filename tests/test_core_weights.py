"""Tests for rank-order weighting (repro.core.weights)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.weights import rank_order_weights


class TestRankOrderWeights:
    def test_paper_200(self):
        w = rank_order_weights(200)
        assert w[0] == 200.0
        assert w[-1] == 1.0
        assert len(w) == 200

    def test_paper_100(self):
        w = rank_order_weights(100)
        assert w[0] == 100.0
        assert w[-1] == 1.0

    def test_strictly_decreasing(self):
        w = rank_order_weights(50)
        assert all(a > b for a, b in zip(w, w[1:]))

    def test_custom_top(self):
        w = rank_order_weights(3, top=9.0)
        assert w == [9.0, 5.0, 1.0]

    def test_single(self):
        assert rank_order_weights(1) == [1.0]
        assert rank_order_weights(1, top=7.0) == [7.0]

    def test_empty(self):
        assert rank_order_weights(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            rank_order_weights(-1)

    @given(st.integers(min_value=2, max_value=500))
    def test_property_bounds_and_monotonicity(self, n):
        w = rank_order_weights(n)
        assert len(w) == n
        assert w[0] == float(n)
        assert w[-1] == pytest.approx(1.0)
        assert all(a > b for a, b in zip(w, w[1:]))
