"""Extra coverage for the figure generators and CLI figure paths."""

from repro.cli import main
from repro.experiments.figures import fig5_all


class TestFig5All:
    def test_all_four_venues(self):
        results = fig5_all(slots=[4], slot_duration=240.0)
        assert set(results) == {
            "canteen",
            "passage",
            "shopping_center",
            "railway_station",
        }
        for res in results.values():
            assert len(res.slots) == 1
            assert 0.0 <= res.average_h_b() <= 1.0

    def test_empty_slot_list_yields_empty(self):
        results = fig5_all(slots=[], slot_duration=240.0)
        for res in results.values():
            assert res.slots == []
            assert res.average_h_b() == 0.0


class TestCliFigurePaths:
    def test_fig6_command(self, capsys):
        rc = main(["fig", "6", "--venue", "passage", "--slots", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "WiGLE/direct" in out

    def test_fig1_command(self, capsys):
        rc = main(["fig", "1", "--duration", "240"])
        assert rc == 0
        assert "h_b^r" in capsys.readouterr().out

    def test_fig2_command(self, capsys):
        rc = main(["fig", "2", "--duration", "240"])
        assert rc == 0
        assert "histogram" in capsys.readouterr().out
