"""Tests for the evil-twin detectors (repro.defenses)."""

import pytest

from repro.defenses.detector import CanaryProbeDetector, MultiSsidDetector
from repro.devices.access_point import LegitAp
from repro.dot11.frames import ProbeRequest
from repro.dot11.medium import Medium
from repro.experiments.attackers import make_cityhunter, make_karma, make_mana
from repro.experiments.scenarios import ScenarioConfig, build_scenario
from repro.geo.point import Point
from repro.sim.simulation import Simulation


def _deploy_with_detectors(city, wigle, attacker_factory, duration=600.0):
    config = ScenarioConfig(
        venue_name="University Canteen",
        mobility="static",
        people_per_min=25.0,
        duration=duration,
        seed=4,
    )
    build = build_scenario(city, wigle, config, attacker_factory)
    center = build.venue.region.center
    passive = MultiSsidDetector("02:de:te:ct:00:01", center, build.medium)
    active = CanaryProbeDetector("02:de:te:ct:00:02", center, build.medium)
    build.sim.add_entity(passive)
    build.sim.add_entity(active)
    build.sim.run(duration + 30.0)
    return build, passive, active


class TestDetectorValidation:
    def test_multi_ssid_threshold(self):
        sim = Simulation(seed=0)
        medium = Medium(sim)
        with pytest.raises(ValueError):
            MultiSsidDetector("02:00:00:00:00:01", Point(0, 0), medium, threshold=1)

    def test_canary_period(self):
        sim = Simulation(seed=0)
        medium = Medium(sim)
        with pytest.raises(ValueError):
            CanaryProbeDetector(
                "02:00:00:00:00:01", Point(0, 0), medium, probe_period=0.0
            )


class TestAgainstCityHunter:
    def test_passive_detector_flags_cityhunter(self, city, wigle):
        build, passive, _ = _deploy_with_detectors(
            city, wigle, make_cityhunter(wigle, city.heatmap)
        )
        assert passive.is_flagged(build.attacker.mac)
        event = passive.detections[0]
        assert event.method == "multi-ssid"
        assert event.bssid == build.attacker.mac

    def test_canary_detector_flags_cityhunter(self, city, wigle):
        """City-Hunter mimics direct probes KARMA-style, so the canary
        trap snares it too."""
        build, _, active = _deploy_with_detectors(
            city, wigle, make_cityhunter(wigle, city.heatmap)
        )
        assert active.probes_sent > 5
        assert active.is_flagged(build.attacker.mac)

    def test_detection_is_fast(self, city, wigle):
        build, passive, _ = _deploy_with_detectors(
            city, wigle, make_cityhunter(wigle, city.heatmap), duration=300.0
        )
        # One 40-SSID burst is enough: detection within the first minute.
        assert passive.detections[0].time < 60.0


class TestAgainstBaselines:
    def test_karma_flagged_by_canary_only_when_probed(self, city, wigle):
        build, passive, active = _deploy_with_detectors(city, wigle, make_karma())
        # KARMA answers the canary immediately.
        assert active.is_flagged(build.attacker.mac)

    def test_mana_flagged_by_both(self, city, wigle):
        build, passive, active = _deploy_with_detectors(city, wigle, make_mana())
        assert active.is_flagged(build.attacker.mac)
        # MANA's broadcast bursts also trip the multi-SSID monitor once
        # its database has content.
        assert passive.ssid_count(build.attacker.mac) > 1


class TestAgainstLegitAp:
    def test_honest_ap_never_flagged(self):
        sim = Simulation(seed=1)
        medium = Medium(sim)
        ap = LegitAp("02:aa:00:00:00:01", Point(0, 0), medium, "Honest WiFi")
        passive = MultiSsidDetector("02:de:te:ct:00:01", Point(1, 0), medium)
        active = CanaryProbeDetector("02:de:te:ct:00:02", Point(1, 1), medium)
        sim.add_entity(ap)
        sim.add_entity(passive)
        sim.add_entity(active)

        # A few honest clients probing for the real network.
        class Prober:
            def __init__(self, mac):
                self.mac = mac

            def position_at(self, t):
                return Point(2, 2)

            def receive(self, frame, t):
                pass

        for i in range(5):
            p = Prober(f"02:cc:00:00:00:0{i}")
            medium.attach(p, 50.0)
            sim.at(float(i), medium.transmit, p, ProbeRequest(p.mac))
            sim.at(float(i) + 0.5, medium.transmit, p,
                   ProbeRequest(p.mac, "Honest WiFi"))
        sim.run(600.0)
        assert not passive.is_flagged(ap.mac)
        assert not active.is_flagged(ap.mac)
        assert passive.ssid_count(ap.mac) == 1
