"""Tests for the timing/unit constants (repro.util.units)."""

import math

import pytest

from repro.util import units


class TestScanCeiling:
    def test_max_responses_is_forty_with_defaults(self):
        # 10 ms window / 0.25 ms per response — the paper's derivation.
        assert units.MAX_RESPONSES_PER_SCAN == 40

    def test_ceiling_is_derived_not_hardcoded(self):
        assert units.MAX_RESPONSES_PER_SCAN == int(
            units.MIN_CHANNEL_TIME_S / units.PROBE_RESPONSE_AIRTIME_S
        )

    def test_max_channel_time_doubles_min(self):
        assert units.MAX_CHANNEL_TIME_S == pytest.approx(2 * units.MIN_CHANNEL_TIME_S)


class TestUnits:
    def test_second_scale_constants(self):
        assert units.MS == pytest.approx(1e-3)
        assert units.US == pytest.approx(1e-6)
        assert units.MINUTE == 60.0
        assert units.HOUR == 3600.0

    def test_airtime_ordering(self):
        # A probe request (no SSID payload) is shorter than a response.
        assert units.PROBE_REQUEST_AIRTIME_S < units.PROBE_RESPONSE_AIRTIME_S


class TestDbFromMw:
    def test_100mw_is_20dbm(self):
        assert units.db_from_mw(100.0) == pytest.approx(20.0)

    def test_1mw_is_0dbm(self):
        assert units.db_from_mw(1.0) == pytest.approx(0.0)

    def test_doubling_adds_3db(self):
        delta = units.db_from_mw(200.0) - units.db_from_mw(100.0)
        assert delta == pytest.approx(10 * math.log10(2))

    @pytest.mark.parametrize("bad", [0.0, -5.0])
    def test_nonpositive_power_rejected(self, bad):
        with pytest.raises(ValueError):
            units.db_from_mw(bad)
