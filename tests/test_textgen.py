"""Tests for SSID name generation (repro.util.textgen)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dot11.ssid import validate_ssid
from repro.util import textgen


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestMakers:
    def test_home_router_shape(self, rng):
        name = textgen.home_router_ssid(rng)
        vendor, _, suffix = name.partition("_")
        assert vendor  # known vendor prefix
        assert len(suffix) == 4
        assert all(c in "0123456789ABCDEF" for c in suffix)

    def test_all_makers_emit_valid_ssids(self, rng):
        for maker in (
            textgen.home_router_ssid,
            textgen.shop_ssid,
            textgen.corporate_ssid,
        ):
            for _ in range(200):
                validate_ssid(maker(rng))

    def test_makers_deterministic_per_seed(self):
        a = [textgen.shop_ssid(np.random.default_rng(5)) for _ in range(1)]
        b = [textgen.shop_ssid(np.random.default_rng(5)) for _ in range(1)]
        assert a == b


class TestUniqueNames:
    def test_exact_count_and_distinct(self, rng):
        names = textgen.unique_names(500, textgen.shop_ssid, rng)
        assert len(names) == 500
        assert len(set(names)) == 500

    def test_all_results_are_valid_ssids(self, rng):
        # Collision suffixes must not push names past 32 bytes.
        for name in textgen.unique_names(3000, textgen.shop_ssid, rng):
            validate_ssid(name)

    def test_zero_count(self, rng):
        assert textgen.unique_names(0, textgen.shop_ssid, rng) == []

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            textgen.unique_names(-1, textgen.shop_ssid, rng)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_property_count_and_validity(self, count, seed):
        rng = np.random.default_rng(seed)
        names = textgen.unique_names(count, textgen.home_router_ssid, rng)
        assert len(names) == count == len(set(names))
        for name in names:
            validate_ssid(name)
