"""Tests for database seeding and the assembled CityHunter attacker."""

import pytest

from repro.core.config import CityHunterConfig
from repro.core.hunter import CityHunter
from repro.core.seeding import seed_database
from repro.dot11.frames import (
    AssocRequest,
    AuthRequest,
    ProbeRequest,
    ProbeResponse,
)
from repro.dot11.medium import Medium
from repro.geo.point import Point
from repro.sim.simulation import Simulation
from repro.wigle.queries import top_ssids_by_count


class TestSeeding:
    def test_selection_is_by_count_ranking_by_heat(self, city, wigle):
        config = CityHunterConfig(n_popular=50, n_nearby=10)
        center = city.venue("University Canteen").region.center
        db = seed_database(wigle, city.heatmap, center, config)
        by_count = {s for s, _ in top_ssids_by_count(wigle, 50)}
        ranked = [e.ssid for e in db.ranked()]
        # Heat re-orders within the count-selected set: the airport
        # network (231 APs, rank ~13 by count) must sit near the top.
        assert ranked.index("#HKAirport Free WiFi") <= 3
        # One-off hot-mall cafés are excluded despite high heat.
        top_weighted = set(ranked[:50])
        assert len(top_weighted & by_count) >= 40

    def test_weights_follow_rank_order(self, city, wigle):
        config = CityHunterConfig(n_popular=50, n_nearby=0)
        center = city.venue("University Canteen").region.center
        db = seed_database(wigle, city.heatmap, center, config)
        entries = db.ranked()
        assert entries[0].weight == 50.0
        assert entries[-1].weight == 1.0

    def test_nearby_seeds_included(self, city, wigle):
        config = CityHunterConfig(n_popular=10, n_nearby=30)
        center = city.venue("University Canteen").region.center
        db = seed_database(wigle, city.heatmap, center, config)
        nearest = wigle.nearest_free_ssids(center, 5)
        for ssid in nearest:
            assert ssid in db

    def test_count_ranking_ablation(self, city, wigle):
        config = CityHunterConfig(n_popular=50, n_nearby=0)
        center = city.venue("University Canteen").region.center
        db = seed_database(wigle, None, center, config, use_heat=False)
        ranked = [e.ssid for e in db.ranked()]
        assert ranked[0] == "-Free HKBN Wi-Fi-"
        assert ranked.index("#HKAirport Free WiFi") > 5

    def test_heat_requested_without_heatmap_rejected(self, city, wigle):
        with pytest.raises(ValueError):
            seed_database(wigle, None, Point(0, 0), use_heat=True)

    def test_carrier_extension_preloads(self, city, wigle):
        config = CityHunterConfig(carrier_ssids=("PCCW1x",), n_popular=10, n_nearby=0)
        db = seed_database(wigle, city.heatmap, Point(0, 0), config)
        entry = db.get("PCCW1x")
        assert entry is not None
        assert entry.origin == "carrier"
        assert entry.weight == config.carrier_weight


class Sniffer:
    def __init__(self, mac="02:00:00:00:00:99", where=Point(1, 0)):
        self.mac = mac
        self.where = where
        self.received = []

    def position_at(self, time):
        return self.where

    def receive(self, frame, time):
        self.received.append(frame)

    def receive_burst(self, responses, time, spacing):
        self.received.extend(responses)


@pytest.fixture
def hunter_deploy(city, wigle):
    sim = Simulation(seed=3)
    medium = Medium(sim)
    venue = city.venue("University Canteen")
    hunter = CityHunter(
        "02:aa:00:00:00:01",
        venue.region.center,
        medium,
        wigle=wigle,
        heatmap=city.heatmap,
    )
    sniffer = Sniffer(where=venue.region.center)
    medium.attach(sniffer, 100.0)
    sim.add_entity(hunter)
    sim.run(0.001)
    return sim, hunter, sniffer


def _drain(sim, sniffer):
    sim.run(sim.now + 1.0)
    out = [f.ssid for f in sniffer.received if isinstance(f, ProbeResponse)]
    sniffer.received.clear()
    return out


class TestCityHunter:
    def test_broadcast_gets_forty(self, hunter_deploy):
        sim, hunter, sniffer = hunter_deploy
        hunter.receive(ProbeRequest(sniffer.mac), sim.now)
        assert len(_drain(sim, sniffer)) == 40

    def test_untried_across_scans(self, hunter_deploy):
        sim, hunter, sniffer = hunter_deploy
        hunter.receive(ProbeRequest(sniffer.mac), sim.now)
        first = set(_drain(sim, sniffer))
        hunter.receive(ProbeRequest(sniffer.mac), sim.now)
        second = set(_drain(sim, sniffer))
        assert not first & second

    def test_direct_probe_learned_and_mimicked(self, hunter_deploy):
        sim, hunter, sniffer = hunter_deploy
        hunter.receive(ProbeRequest(sniffer.mac, "NewNet"), sim.now)
        assert "NewNet" in hunter.db
        entry = hunter.db.get("NewNet")
        assert entry.origin == "direct"
        assert entry.direct_seen
        assert _drain(sim, sniffer) == ["NewNet"]

    def test_repeat_direct_probe_bumps_weight(self, hunter_deploy):
        sim, hunter, sniffer = hunter_deploy
        hunter.receive(ProbeRequest(sniffer.mac, "NewNet"), sim.now)
        before = hunter.db.get("NewNet").weight
        hunter.receive(ProbeRequest("02:00:00:00:00:77", "NewNet"), sim.now)
        assert hunter.db.get("NewNet").weight == pytest.approx(
            before + hunter.config.direct_repeat_bump
        )

    def test_hit_updates_weight_and_freshness(self, hunter_deploy):
        sim, hunter, sniffer = hunter_deploy
        hunter.receive(ProbeRequest(sniffer.mac), sim.now)
        sent = _drain(sim, sniffer)
        target = sent[5]
        before = hunter.db.get(target).weight
        hunter.receive(AuthRequest(sniffer.mac, hunter.mac), sim.now)
        hunter.receive(AssocRequest(sniffer.mac, hunter.mac, target), sim.now)
        assert hunter.db.get(target).weight == pytest.approx(
            before + hunter.config.hit_weight_bonus
        )
        assert hunter.db.recent_hits()[0] == target
        assert hunter.session.clients[sniffer.mac].connected

    def test_mimic_hit_does_not_touch_freshness(self, hunter_deploy):
        sim, hunter, sniffer = hunter_deploy
        hunter.receive(ProbeRequest(sniffer.mac, "HomeNet"), sim.now)
        hunter.receive(AuthRequest(sniffer.mac, hunter.mac), sim.now)
        hunter.receive(AssocRequest(sniffer.mac, hunter.mac, "HomeNet"), sim.now)
        assert hunter.db.recent_hits() == []
        assert hunter.session.clients[sniffer.mac].connected_via_direct

    def test_ghost_hit_adapts_split(self, hunter_deploy, monkeypatch):
        sim, hunter, sniffer = hunter_deploy
        hunter.receive(ProbeRequest(sniffer.mac), sim.now)
        _drain(sim, sniffer)
        # Find the pb_ghost pick from the session provenance and hit it.
        prov = hunter.session._provenance[sniffer.mac]
        ghost_ssid = next(s for s, p in prov.items() if p.bucket == "pb_ghost")
        pb_before = hunter.split.pb_size
        hunter.receive(AssocRequest(sniffer.mac, hunter.mac, ghost_ssid), sim.now)
        assert hunter.split.pb_size == pb_before + 1

    def test_untried_lists_ablation_resends(self, city, wigle):
        sim = Simulation(seed=3)
        medium = Medium(sim)
        config = CityHunterConfig(untried_lists=False)
        hunter = CityHunter(
            "02:aa:00:00:00:01",
            Point(0, 0),
            medium,
            wigle=wigle,
            heatmap=city.heatmap,
            config=config,
        )
        sniffer = Sniffer(where=Point(0, 0))
        medium.attach(sniffer, 100.0)
        sim.add_entity(hunter)
        sim.run(0.001)
        hunter.receive(ProbeRequest(sniffer.mac), sim.now)
        first = _drain(sim, sniffer)
        hunter.receive(ProbeRequest(sniffer.mac), sim.now)
        second = _drain(sim, sniffer)
        # MANA-style amnesia: substantial overlap between bursts.
        assert len(set(first) & set(second)) > 30

    def test_db_size_property(self, hunter_deploy):
        _, hunter, _ = hunter_deploy
        assert hunter.db_size == len(hunter.db)
