"""Tests for the sweep utility and paper-target validation."""

import pytest

from repro.analysis.validation import PaperTarget, all_pass, check_all, targets
from repro.experiments.attackers import make_mana
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.sweeps import sweep


class TestSweep:
    @pytest.fixture(scope="class")
    def result(self, city, wigle):
        base = ScenarioConfig(
            venue_name="Central Subway Passage",
            mobility="corridor",
            people_per_min=20.0,
            duration=180.0,
            seed=3,
            fidelity="burst",
        )
        return sweep(
            city,
            wigle,
            make_mana(),
            base,
            grid={"people_per_min": [10.0, 40.0], "walk_speed_mean": [0.8, 2.0]},
        )

    def test_full_grid_executed(self, result):
        assert len(result.cells) == 4
        params = [
            (c.params["people_per_min"], c.params["walk_speed_mean"])
            for c in result.cells
        ]
        assert params == [(10.0, 0.8), (10.0, 2.0), (40.0, 0.8), (40.0, 2.0)]

    def test_density_reflected_in_clients(self, result):
        sparse = result.cells[0].summary.total_clients
        dense = result.cells[2].summary.total_clients
        assert dense > 2 * sparse

    def test_render_and_series(self, result):
        out = result.render(title="grid")
        assert "people_per_min" in out and "h_b" in out
        series = result.series("people_per_min")
        assert len(series) == 4

    def test_unknown_field_rejected(self, city, wigle):
        base = ScenarioConfig(
            venue_name="University Canteen",
            mobility="static",
            people_per_min=5.0,
            duration=60.0,
        )
        with pytest.raises(ValueError):
            sweep(city, wigle, make_mana(), base, grid={"warp_factor": [9]})


class TestValidation:
    def test_registry_complete(self):
        reg = targets()
        assert "adv.passage.h_b" in reg
        assert len(reg) >= 10
        for target in reg.values():
            assert target.low <= target.high
            # The paper's own value must sit inside the accepted band
            # (except KARMA's exact zero, which is the band).
            assert target.low <= target.paper_value <= target.high

    def test_check_and_report(self):
        target = PaperTarget("x", "demo", 0.1, 0.05, 0.2, "nowhere")
        assert target.check(0.1)
        assert not target.check(0.3)
        assert "OK" in target.report(0.1)
        assert "OUT" in target.report(0.3)

    def test_check_all(self):
        lines = check_all({"adv.passage.h_b": 0.12, "karma.h_b": 0.0})
        assert len(lines) == 2
        assert all("OK" in line for line in lines)

    def test_all_pass(self):
        assert all_pass({"adv.passage.h_b": 0.12})
        assert not all_pass({"adv.passage.h_b": 0.5})

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            check_all({"nonsense": 1.0})
