"""Replay of the committed UJI-shaped probe trace.

``tests/data/uji_probes_sample.jsonl`` is a committed JSONL capture in
the UJI Probes dataset shape (one object per line: ``ts``, ``mac``,
``ssid`` — empty for broadcast — and a ``type``), generated from a
recorded canteen scenario with three deliberately malformed lines
injected at known positions.  These tests pin the tolerant-parse
accounting, the replay determinism contract (same digest across two
runs and across ``REPRO_WORKERS`` settings) and the round-trip through
the trace writer, plus the ``repro serve replay`` CLI on top.
"""

import json
import pathlib

import pytest

from repro.cli import main as cli_main
from repro.experiments.calibration import venue_profile
from repro.serve.core import RankingCore
from repro.serve.events import decisions_digest
from repro.serve.service import run_stream
from repro.serve.trace import load_trace, write_trace

FIXTURE = pathlib.Path(__file__).parent / "data" / "uji_probes_sample.jsonl"


@pytest.fixture(scope="module")
def trace():
    events, stats = load_trace(FIXTURE)
    return events, stats


def _core(city, wigle, seed=11):
    # The canteen centre: the fixture was recorded at this position.
    position = city.venue(venue_profile("canteen").venue_name).region.center
    return RankingCore.seeded(wigle, city.heatmap, position, seed=seed)


class TestFixtureParsing:
    def test_tolerant_parse_accounting(self, trace):
        events, stats = trace
        assert stats.lines == 215
        assert stats.parsed == len(events) == 212
        assert stats.skipped == 3
        assert [line for line, _ in stats.reasons] == [41, 91, 215]

    def test_event_shape(self, trace):
        events, _ = trace
        kinds = {type(e).__name__ for e in events}
        assert "ProbeEvent" in kinds and "FeedbackEvent" in kinds
        assert all(e.mac == e.mac.lower() for e in events)
        times = [e.time for e in events]
        assert times == sorted(times)


class TestReplayDeterminism:
    def test_same_digest_across_two_runs(self, trace, city, wigle):
        events, _ = trace
        digests = []
        for _ in range(2):
            service = run_stream(_core(city, wigle), events, workers=2)
            digests.append(decisions_digest(service.decisions))
        assert digests[0] == digests[1]
        assert len(service.decisions) > 0

    def test_same_digest_across_worker_env(
        self, trace, city, wigle, monkeypatch
    ):
        """REPRO_WORKERS changes concurrency, never the decisions."""
        events, _ = trace
        digests = {}
        for env_workers in ("1", "6"):
            monkeypatch.setenv("REPRO_WORKERS", env_workers)
            service = run_stream(_core(city, wigle), events, workers=None)
            assert service.workers == int(env_workers)
            digests[env_workers] = decisions_digest(service.decisions)
        assert digests["1"] == digests["6"]


class TestRoundTrip:
    def test_write_then_load_is_identity(self, trace, tmp_path):
        events, _ = trace
        path = write_trace(events, tmp_path / "rt.jsonl")
        reloaded, stats = load_trace(path)
        assert stats.skipped == 0
        assert reloaded == events


class TestReplayCli:
    def test_replay_writes_decisions_and_reports_skips(
        self, tmp_path, capsys
    ):
        out = tmp_path / "decisions.jsonl"
        rc = cli_main(
            [
                "serve",
                "replay",
                str(FIXTURE),
                "--workers",
                "3",
                "--seed",
                "11",
                "--decisions-out",
                str(out),
            ]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "3 line(s) skipped" in printed
        assert "decisions digest " in printed
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert rows, "no decisions written"
        assert all(len(r) == 4 for r in rows)

    def test_replay_strict_fails_on_skips(self, capsys):
        rc = cli_main(
            ["serve", "replay", str(FIXTURE), "--strict", "--workers", "1"]
        )
        assert rc == 1
