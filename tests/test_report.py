"""Tests for the one-command reproduction report (repro.experiments.report).

The report is generated once per module at a deliberately tiny scale —
two simulated minutes per experiment, one Fig. 5 slot — so the test
exercises the full assembly path (tables, figures, verdicts, markdown
structure) without re-running the paper-scale sweeps.  Verdict *values*
at this scale are meaningless and are not asserted; structure is.
"""

import pytest

from repro.analysis.validation import targets
from repro.experiments.calibration import all_profiles, venue_profile
from repro.experiments.report import generate_report


@pytest.fixture(scope="module")
def report():
    return generate_report(
        duration=120.0, fig5_slots=(0,), fig5_slot_duration=120.0, seed=7
    )


class TestReportStructure:
    def test_headline_and_sections_in_order(self, report):
        lines = report.splitlines()
        assert lines[0] == "# City-Hunter reproduction report"
        order = [
            lines.index("## Tables"),
            lines.index("## Figures"),
            lines.index("## Paper-target verdicts"),
        ]
        assert order == sorted(order)

    def test_ends_with_single_newline(self, report):
        assert report.endswith("\n")
        assert not report.endswith("\n\n")

    def test_code_fences_balanced(self, report):
        assert report.count("```") % 2 == 0

    def test_all_four_tables_rendered(self, report):
        for marker in ("Table I:", "Table II", "Table III", "Table IV"):
            assert marker in report

    def test_every_venue_figure_rendered(self, report):
        for key in all_profiles():
            assert venue_profile(key).venue_name in report


class TestReportVerdicts:
    def test_verdict_summary_line(self, report):
        assert "targets inside their accepted bands" in report
        assert f"({len(targets())} registered)" in report

    def test_every_verdict_has_a_status(self, report):
        section = report.split("## Paper-target verdicts", 1)[1]
        verdicts = [
            line
            for line in section.splitlines()
            if line.startswith("[")
        ]
        assert verdicts, "no verdict lines rendered"
        for line in verdicts:
            assert line.startswith("[OK") or line.startswith("[OUT"), line

    def test_fig5_subset_measures_every_venue(self, report):
        section = report.split("## Paper-target verdicts", 1)[1]
        for key in all_profiles():
            assert f"adv.{key}.h_b" in section


class TestReportParameters:
    def test_full_slot_grid_accepted(self):
        """``fig5_slots=None`` means all 12 slots; just check the call
        path resolves it without running the full grid here."""
        import inspect

        sig = inspect.signature(generate_report)
        assert sig.parameters["fig5_slots"].default == (0, 4, 10)
        assert sig.parameters["duration"].default == 1800.0
