"""Tests for the observability layer (repro.obs + tracing ring buffer).

The load-bearing property is merge determinism: worker snapshots merged
in spec order must equal the registry a single serial process would have
accumulated, so the ``metrics.json`` artefact is worker-count invariant.
"""

import json

import pytest

from repro.analysis.observability import (
    pbfb_timeline,
    provenance_breakdown,
    top_hit_ssids,
    trace_window_counts,
)
from repro.obs.artifacts import artifact_dir, artifact_path
from repro.obs.events import EventSink, read_jsonl, write_events_jsonl
from repro.obs.registry import (
    FixedHistogram,
    MetricsRegistry,
    merge_snapshots,
    metric_key,
    parse_key,
    validate_metrics_doc,
)
from repro.obs.spans import span
from repro.sim.simulation import Simulation
from repro.sim.tracing import Trace


class TestMetricKeys:
    def test_plain_name(self):
        assert metric_key("hits") == "hits"
        assert parse_key("hits") == ("hits", {})

    def test_labels_round_trip(self):
        key = metric_key("hits", {"provenance": "wigle-near", "bucket": "pb"})
        name, labels = parse_key(key)
        assert name == "hits"
        assert labels == {"provenance": "wigle-near", "bucket": "pb"}

    def test_label_order_is_canonical(self):
        a = metric_key("x", {"a": 1, "b": 2})
        b = metric_key("x", {"b": 2, "a": 1})
        assert a == b

    def test_hostile_label_values_survive(self):
        # SSIDs can contain braces, quotes, commas — the JSON encoding
        # must keep the key parseable anyway.
        ssid = 'Cafe "{a,b}=c" WiFi'
        name, labels = parse_key(metric_key("hit", {"ssid": ssid}))
        assert labels["ssid"] == ssid


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("n")
        reg.inc("n", 2)
        reg.inc("n", 1, kind="x")
        assert reg.counter_value("n") == 3
        assert reg.counter_value("n", kind="x") == 1

    def test_gauges(self):
        reg = MetricsRegistry()
        reg.gauge_set("g", 5)
        reg.gauge_set("g", 2)
        assert reg.to_dict()["gauges"]["g"] == 2
        reg.gauge_max("m", 3)
        reg.gauge_max("m", 1)
        assert reg.to_dict()["gauges"]["m"] == 3

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        for v in (1, 5, 40, 1000):
            reg.observe("h", v, buckets=(10, 100))
        doc = reg.to_dict()["histograms"]["h"]
        assert doc["bounds"] == [10, 100]
        assert doc["counts"] == [2, 1, 1]  # <=10, <=100, overflow
        assert doc["count"] == 4
        assert doc["sum"] == 1046

    def test_series_and_timers(self):
        reg = MetricsRegistry()
        reg.series_append("s", 1.0, 30)
        reg.series_append("s", 2.0, 29)
        with reg.timer("t"):
            pass
        doc = reg.to_dict()
        assert doc["series"]["s"] == [[1.0, 30.0], [2.0, 29.0]]
        assert doc["timers"]["t"]["count"] == 1
        assert doc["timers"]["t"]["total_s"] >= 0

    def test_snapshot_json_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("c", 2, ssid="Free WiFi")
        reg.observe("h", 7)
        reg.series_append("s", 0.5, 1)
        reloaded = MetricsRegistry.from_dict(
            json.loads(json.dumps(reg.to_dict()))
        )
        assert reloaded.to_dict() == reg.to_dict()


class TestMergeSemantics:
    def test_counters_sum_gauges_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        b.inc("c", 3)
        b.inc("only_b")
        a.gauge_set("g", 5)
        b.gauge_set("g", 4)
        merged = a.merge(b).to_dict()
        assert merged["counters"] == {"c": 5, "only_b": 1}
        assert merged["gauges"]["g"] == 5

    def test_histogram_bucket_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (1, 50):
            a.observe("h", v, buckets=(10, 100))
        for v in (5, 500):
            b.observe("h", v, buckets=(10, 100))
        doc = a.merge(b).to_dict()["histograms"]["h"]
        assert doc["counts"] == [2, 1, 1]
        assert doc["count"] == 4
        assert doc["sum"] == 556

    def test_histogram_bounds_mismatch_rejected(self):
        a = FixedHistogram((1, 2))
        b = FixedHistogram((1, 3))
        with pytest.raises(ValueError, match="different bounds"):
            a.merge(b)

    def test_merge_is_worker_count_invariant(self):
        # Simulate 4 per-run snapshots merged serially vs "pooled":
        # the merged export must be identical as long as order is
        # spec order, which the executor guarantees.
        snaps = []
        for i in range(4):
            reg = MetricsRegistry()
            reg.inc("hits", i + 1, provenance="wigle-near")
            reg.observe("burst", 10 * (i + 1), buckets=(10, 20, 40))
            reg.series_append("pb", float(i), 30 + i)
            snaps.append(reg.to_dict())
        assert merge_snapshots(snaps) == merge_snapshots(
            [json.loads(json.dumps(s)) for s in snaps]
        )

    def test_series_merge_sorted(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.series_append("s", 2.0, 1)
        b.series_append("s", 1.0, 2)
        assert a.merge(b).to_dict()["series"]["s"] == [[1.0, 2.0], [2.0, 1.0]]


class TestEventSink:
    def test_ring_drops_oldest_and_counts(self):
        sink = EventSink(max_events=3)
        for i in range(5):
            sink.emit(float(i), "e", i=i)
        assert len(sink) == 3
        assert sink.dropped == 2
        assert [e["i"] for e in sink] == [2, 3, 4]

    def test_disabled_is_noop(self):
        sink = EventSink(enabled=False)
        sink.emit(0.0, "e")
        assert len(sink) == 0 and sink.dropped == 0

    def test_jsonl_round_trip(self, tmp_path):
        sink = EventSink()
        sink.emit(1.0, "span", name="run")
        sink.emit(2.0, "hit", ssid="Free WiFi")
        path = sink.write_jsonl(tmp_path / "events.jsonl")
        assert read_jsonl(path) == sink.records()

    def test_write_events_jsonl_tags_runs(self, tmp_path):
        path = tmp_path / "all.jsonl"
        write_events_jsonl([{"time": 1.0, "kind": "e"}], path, run="r0")
        write_events_jsonl([{"time": 2.0, "kind": "e"}], path, run="r1")
        assert [e["run"] for e in read_jsonl(path)] == ["r0", "r1"]


class TestArtifactDir:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
        monkeypatch.delenv("REPRO_TIMINGS_DIR", raising=False)
        assert str(artifact_path("metrics")).endswith("benchmarks/out/metrics.json")

    def test_new_env_wins_over_legacy(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", "/tmp/new")
        monkeypatch.setenv("REPRO_TIMINGS_DIR", "/tmp/old")
        assert str(artifact_dir()) == "/tmp/new"

    def test_legacy_still_honoured(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
        monkeypatch.setenv("REPRO_TIMINGS_DIR", "/tmp/old")
        assert str(artifact_dir()) == "/tmp/old"


class TestSpans:
    def test_span_records_sim_time_and_events(self):
        sim = Simulation(trace=False)
        sim.at(1.0, lambda: None)
        sim.at(2.0, lambda: None)
        with span(sim, "phase"):
            sim.scheduler.run_until(5.0)
        doc = sim.metrics.to_dict()
        assert doc["counters"]["span.phase.count"] == 1
        assert doc["counters"]["span.phase.sim_s"] == 5.0
        assert doc["counters"]["span.phase.events"] == 2
        assert doc["timers"]["span.phase"]["count"] == 1
        kinds = [e["kind"] for e in sim.events]
        assert "span" in kinds

    def test_simulation_run_emits_phase_spans(self):
        sim = Simulation()
        sim.run(10.0)
        counters = sim.metrics.to_dict()["counters"]
        assert counters["span.sim.start_entities.count"] == 1
        assert counters["span.sim.run.count"] == 1
        gauges = sim.metrics.to_dict()["gauges"]
        assert gauges["sim.time"] == 10.0


class TestTraceRing:
    def test_cap_and_dropped(self):
        t = Trace(max_records=3)
        for i in range(5):
            t.emit(float(i), "k", f"s{i}")
        assert len(t) == 3
        assert t.dropped == 2
        assert [r.subject for r in t] == ["s2", "s3", "s4"]

    def test_between(self):
        t = Trace()
        for i in range(5):
            t.emit(float(i), "k", f"s{i}")
        assert [r.subject for r in t.between(1.0, 3.0)] == ["s1", "s2"]

    def test_counts_by_kind_uses_retained_rows(self):
        t = Trace(max_records=2)
        t.emit(0.0, "a", "x")
        t.emit(1.0, "b", "y")
        t.emit(2.0, "b", "z")
        assert t.counts_by_kind() == {"b": 2}

    def test_env_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_MAX", "2")
        t = Trace()
        assert t.max_records == 2
        monkeypatch.setenv("REPRO_TRACE_MAX", "zero")
        with pytest.raises(ValueError, match="REPRO_TRACE_MAX"):
            Trace()

    def test_repro_trace_env_enables_simulation_trace(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert Simulation().trace.enabled
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not Simulation().trace.enabled
        # Explicit argument always wins over the environment.
        assert Simulation(trace=True).trace.enabled

    def test_window_counts_helper(self):
        t = Trace()
        t.emit(0.5, "probe", "a")
        t.emit(1.5, "probe", "b")
        t.emit(1.6, "hit", "b")
        t.emit(9.0, "probe", "c")
        assert trace_window_counts(t, 1.0, 2.0) == {"probe": 1, "hit": 1}


class TestObsCli:
    @pytest.fixture()
    def artefact(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("attacker.probes", 12, type="broadcast")
        reg.inc("attacker.ssids_sent", 10, provenance="wigle-near", bucket="pb")
        reg.inc("attacker.hits", 2, provenance="wigle-near", bucket="pb")
        reg.inc("attacker.hit_ssids", 2, ssid="Free WiFi")
        snap = reg.to_dict()
        doc = {
            "schema": "repro.metrics/v1",
            "workers": 2,
            "run_count": 1,
            "merged": snap,
            "runs": [
                {"tag": "t0", "attacker": "cityhunter", "seed": 1,
                 "metrics": snap,
                 "events": [{"time": 1.0, "kind": "span", "name": "sim.run"}]},
            ],
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(doc))
        return path

    def test_summarize(self, artefact, capsys):
        from repro.cli import main

        assert main(["obs", "summarize", "--path", str(artefact)]) == 0
        out = capsys.readouterr().out
        assert "wigle-near" in out
        assert "20.0%" in out

    def test_top_ssids(self, artefact, capsys):
        from repro.cli import main

        assert main(["obs", "top-ssids", "-n", "3",
                     "--path", str(artefact)]) == 0
        assert "Free WiFi" in capsys.readouterr().out

    def test_events_jsonl(self, artefact, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "events.jsonl"
        assert main(["obs", "events", "--path", str(artefact),
                     "--jsonl", str(out_path)]) == 0
        events = read_jsonl(out_path)
        assert events == [
            {"run": "t0", "time": 1.0, "kind": "span", "name": "sim.run"},
        ]

    def test_missing_artefact_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["obs", "summarize",
                     "--path", str(tmp_path / "nope.json")]) == 1
        assert "no metrics artefact" in capsys.readouterr().err


class TestArtefactHelpers:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.inc("attacker.ssids_sent", 10, provenance="wigle-near", bucket="pb")
        reg.inc("attacker.ssids_sent", 4, provenance="overheard-direct",
                bucket="fb")
        reg.inc("attacker.hits", 2, provenance="wigle-near", bucket="pb")
        reg.inc("attacker.hit_ssids", 2, ssid="Free WiFi")
        reg.inc("attacker.hit_ssids", 1, ssid="Cafe WiFi")
        reg.series_append("hunter.pb_size", 0.0, 30)
        reg.series_append("hunter.fb_size", 0.0, 10)
        reg.series_append("hunter.pb_size", 5.0, 31)
        reg.series_append("hunter.fb_size", 5.0, 9)
        return reg.to_dict()

    def test_provenance_breakdown(self):
        rows = provenance_breakdown(self._snapshot())
        assert rows[0] == ("wigle-near", 10, 2, 8, 0.2)
        assert rows[1] == ("overheard-direct", 4, 0, 4, 0.0)

    def test_top_hit_ssids(self):
        assert top_hit_ssids(self._snapshot(), 1) == [("Free WiFi", 2)]

    def test_pbfb_timeline(self):
        assert pbfb_timeline(self._snapshot()) == [
            (0.0, 30, 10), (5.0, 31, 9),
        ]

    def test_validate_metrics_doc(self):
        doc = {
            "schema": "repro.metrics/v1",
            "workers": 1,
            "run_count": 1,
            "merged": self._snapshot(),
            "runs": [
                {"tag": "t", "attacker": "cityhunter", "seed": 1,
                 "metrics": self._snapshot()},
            ],
        }
        validate_metrics_doc(doc)  # should not raise
        bad = dict(doc, run_count=2)
        with pytest.raises(ValueError, match="run_count"):
            validate_metrics_doc(bad)
        with pytest.raises(ValueError, match="schema"):
            validate_metrics_doc(dict(doc, schema="nope"))
