"""Shared fixtures.

City generation takes ~1.5 s, so the default city and its WiGLE registry
are built once per test session.  Tests must treat them as immutable.
"""

import numpy as np
import pytest

from repro.city.model import build_city
from repro.wigle.database import WigleDatabase


@pytest.fixture(scope="session")
def city():
    return build_city(rng=np.random.default_rng(42))


@pytest.fixture(scope="session")
def wigle(city):
    return WigleDatabase.from_access_points(city.aps)
