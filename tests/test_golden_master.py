"""Golden-master equivalence tests.

The committed fixture (``tests/data/golden_metrics.*``) pins the exact
merged metrics of the canonical batch.  These tests assert the live
tree still reproduces it — serially, at worker count 4, and with the
medium's spatial index forced off — so both the parallel merge and the
spatial-index delivery path are locked to bit-identical behaviour.

On mismatch the assertion message is a per-section diff (via
:func:`repro.obs.golden.diff_metrics_docs`), not two hashes; if the
change was intentional, regenerate with ``python tests/regen_golden.py``
and commit the new fixture alongside it.
"""

import json
import os
import pathlib

import pytest

from repro.dot11.medium import MEDIUM_INDEX_ENV
from repro.experiments.golden import golden_specs, run_golden
from repro.obs.lineage import LINEAGE_ENV
from repro.obs.golden import (
    canonical_metrics_doc,
    diff_metrics_docs,
    metrics_digest,
)
from repro.obs.registry import validate_metrics_doc

DATA_DIR = pathlib.Path(__file__).resolve().parent / "data"
DOC_PATH = DATA_DIR / "golden_metrics.json"
DIGEST_PATH = DATA_DIR / "golden_metrics.digest"

_SCOPED_ENV = (
    "REPRO_ARTIFACT_DIR",
    MEDIUM_INDEX_ENV,
    "REPRO_WORKERS",
    LINEAGE_ENV,
)


@pytest.fixture(scope="module")
def golden_env(tmp_path_factory):
    """Module-scoped artefact isolation: batch artefacts go to a tmp
    dir and no ambient index/worker override leaks into the runs."""
    saved = {k: os.environ.get(k) for k in _SCOPED_ENV}
    os.environ["REPRO_ARTIFACT_DIR"] = str(tmp_path_factory.mktemp("golden"))
    os.environ.pop(MEDIUM_INDEX_ENV, None)
    os.environ.pop("REPRO_WORKERS", None)
    os.environ.pop(LINEAGE_ENV, None)
    yield
    for key, value in saved.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


@pytest.fixture(scope="module")
def serial_doc(golden_env):
    """The canonical batch, serial, index on — shared across tests."""
    return run_golden(workers=1)


def fixture_doc() -> dict:
    return json.loads(DOC_PATH.read_text())


def fixture_digest() -> str:
    return DIGEST_PATH.read_text().strip()


def _assert_same(reference: dict, candidate: dict, context: str) -> None:
    if metrics_digest(reference) == metrics_digest(candidate):
        return
    diff = diff_metrics_docs(reference, candidate)
    pytest.fail(f"metrics drift ({context}):\n{diff}")


class TestFixtureIntegrity:
    def test_fixture_files_exist(self):
        assert DOC_PATH.is_file() and DIGEST_PATH.is_file()

    def test_digest_matches_committed_doc(self):
        """The two fixture files must agree with each other."""
        assert metrics_digest(fixture_doc()) == fixture_digest()

    def test_fixture_covers_every_golden_spec(self):
        doc = fixture_doc()
        assert doc["run_count"] == len(golden_specs())
        tags = [run["tag"] for run in doc["runs"]]
        assert tags == [spec.tag for spec in golden_specs()]
        assert not any(run.get("failed") for run in doc["runs"])

    def test_canonical_form_strips_nondeterminism(self):
        doc = fixture_doc()
        assert "workers" not in doc
        assert "timers" not in doc["merged"]
        for run in doc["runs"]:
            assert "timers" not in run["metrics"]


class TestGoldenEquivalence:
    def test_serial_run_matches_fixture(self, serial_doc):
        validate_metrics_doc(serial_doc)
        _assert_same(
            fixture_doc(),
            serial_doc,
            "live tree vs committed fixture — regenerate with "
            "tests/regen_golden.py if this change is intentional",
        )
        assert metrics_digest(serial_doc) == fixture_digest()

    def test_worker_count_invariance(self, serial_doc):
        parallel_doc = run_golden(workers=4)
        assert parallel_doc["workers"] == 4
        _assert_same(serial_doc, parallel_doc, "workers=1 vs workers=4")

    def test_medium_index_off_invariance(self, serial_doc):
        os.environ[MEDIUM_INDEX_ENV] = "off"
        try:
            brute_doc = run_golden(workers=1)
        finally:
            os.environ.pop(MEDIUM_INDEX_ENV, None)
        _assert_same(
            serial_doc, brute_doc, "spatial index on vs REPRO_MEDIUM_INDEX=off"
        )

    def test_lineage_on_invariance(self, serial_doc):
        """Causal lineage tracing is observation-only: with REPRO_LINEAGE
        on, every metric of the golden batch must stay bit-identical —
        no extra RNG draws, no extra scheduled events, no metric writes."""
        os.environ[LINEAGE_ENV] = "1"
        try:
            lineage_doc = run_golden(workers=1)
        finally:
            os.environ.pop(LINEAGE_ENV, None)
        _assert_same(
            serial_doc, lineage_doc, "lineage off vs REPRO_LINEAGE=1"
        )
        assert metrics_digest(lineage_doc) == fixture_digest()


class TestDiffRendering:
    def test_identical_docs_diff_empty(self):
        doc = fixture_doc()
        assert diff_metrics_docs(doc, doc) == ""

    def test_counter_drift_is_named(self):
        old = fixture_doc()
        new = json.loads(json.dumps(old))
        counters = new["merged"]["counters"]
        key = sorted(counters)[0]
        counters[key] += 1
        diff = diff_metrics_docs(old, new)
        assert key in diff
        assert "merged.counters" in diff

    def test_run_count_drift_is_named(self):
        old = fixture_doc()
        new = json.loads(json.dumps(old))
        new["runs"] = new["runs"][:-1]
        new["run_count"] -= 1
        diff = diff_metrics_docs(old, new)
        assert "run_count" in diff

    def test_diff_is_bounded(self):
        old = fixture_doc()
        new = json.loads(json.dumps(old))
        for key in new["merged"]["counters"]:
            new["merged"]["counters"][key] += 1
        diff = diff_metrics_docs(old, new, limit=5)
        assert len(diff.splitlines()) <= 6
        assert "truncated" in diff

    def test_canonicalisation_ignores_timers_and_workers(self):
        old = fixture_doc()
        new = json.loads(json.dumps(old))
        new["workers"] = 64
        new["merged"]["timers"] = {"x": {"count": 1, "total_s": 9.9}}
        assert diff_metrics_docs(old, new) == ""
        assert metrics_digest(new) == metrics_digest(old)
        assert canonical_metrics_doc(new) == canonical_metrics_doc(old)
