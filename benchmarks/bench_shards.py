#!/usr/bin/env python
"""Sharded-city benchmark: stations-stepped/sec vs shard count.

Runs the same :class:`~repro.sim.shards.ShardScenario` at every shard
count in the grid and measures throughput.  The win is algorithmic, not
parallel: each shard's per-epoch adjacency refresh only considers
sensors inside its own x-stripe (inflated by the motion-aware reach
margin), so total work falls roughly as ``O(N * S / k)`` even on a
single core.  Every grid point must reproduce the 1-shard digest
bit-for-bit — the determinism contract is re-checked on every benchmark
run, not just in the golden tests.

Writes ``BENCH_shards.json`` to the artefact directory
(``REPRO_ARTIFACT_DIR``, default ``benchmarks/out``) and prints the
table.  ``--assert-speedup X`` exits non-zero unless the 4-shard point
at ``--assert-at`` stations reaches an ``X``-fold speedup over 1 shard
— the contract CI's shard-smoke job enforces (2x at 2000 stations).

``--chaos`` appends a fault-tolerance section: the 2000-station point
re-run in process mode three ways (clean, with epoch-barrier
checkpoints, and with checkpoints plus an injected mid-run shard
crash).  Each variant's digest must equal the inline grid baseline, so
the checkpoint/recovery overhead lands in the artefact alongside a
hard determinism check.

Usage::

    PYTHONPATH=src python benchmarks/bench_shards.py [--assert-speedup 2.0]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _shared import emit, out_dir  # noqa: E402
from repro.sim.shards import ShardScenario, run_sharded  # noqa: E402

SCHEMA = "repro.bench_shards/v1"
ARTIFACT = "BENCH_shards.json"

STATION_GRID = (2000, 4000)
SHARD_GRID = (1, 2, 4)
SENSORS = 400
SIZE_M = 2400.0
EPOCH_S = 2.0
DURATION_S = 240.0
SEED = 11

# --chaos variants: checkpoint cadence and the epoch the injected crash
# fires at.  The crash epoch sits past several barriers so recovery
# replays real workload (120 epochs total at 2 s each).
CHAOS_STATIONS = 2000
CHAOS_SHARDS = 4
CHAOS_CKPT_EVERY = 20
CHAOS_CRASH_EPOCH = 60


def _scenario(stations):
    return ShardScenario(
        stations=stations,
        sensors=SENSORS,
        duration=DURATION_S,
        seed=SEED,
        size_m=SIZE_M,
        epoch_s=EPOCH_S,
    )


def _run_point(stations, shards, epoch_trace=False):
    scenario = _scenario(stations)
    start = time.perf_counter()
    result = run_sharded(
        scenario,
        shards=shards,
        mode="inline",
        collect_states=False,
        epoch_trace=epoch_trace,
    )
    wall = time.perf_counter() - start
    # stations * epochs = station-steps performed, a size-invariant rate
    return {
        "stations": stations,
        "shards": shards,
        "wall_s": round(wall, 4),
        "stations_per_s": round(stations * result.epochs / wall, 1),
        "handoff_fraction": round(
            result.wall_handoff_s / wall if wall > 0 else 0.0, 4
        ),
        "hits": result.summary["hits"],
        "digest": result.digest(),
    }


def _chaos_variant(name, baseline_digest, faults=None, ckpt_every=0):
    scenario = _scenario(CHAOS_STATIONS)
    start = time.perf_counter()
    result = run_sharded(
        scenario,
        shards=CHAOS_SHARDS,
        mode="process",
        collect_states=False,
        faults=faults,
        ckpt_every=ckpt_every,
    )
    wall = time.perf_counter() - start
    counters = result.metrics.get("counters", {})
    return {
        "variant": name,
        "wall_s": round(wall, 4),
        "digest_ok": result.digest() == baseline_digest,
        "ckpt_writes": int(counters.get("shardops.ckpt.writes", 0)),
        "ckpt_bytes": int(counters.get("shardops.ckpt.bytes", 0)),
        "crashes": int(counters.get("shardops.recovery.crashes", 0)),
        "respawns": int(counters.get("shardops.recovery.respawns", 0)),
        "rollback_epochs": int(
            counters.get("shardops.recovery.rollback_epochs", 0)
        ),
    }


def run_chaos(baseline_digest):
    """The three process-mode variants the --chaos section compares."""
    from repro.faults.plan import FaultPlan
    from repro.faults.shards import ShardFaultParams

    plan = FaultPlan(
        seed=SEED,
        shard_faults=ShardFaultParams(crash_epoch=CHAOS_CRASH_EPOCH),
    )
    variants = [
        _chaos_variant("process-clean", baseline_digest),
        _chaos_variant(
            "process-ckpt", baseline_digest, ckpt_every=CHAOS_CKPT_EVERY
        ),
        _chaos_variant(
            "process-crash-recover",
            baseline_digest,
            faults=plan,
            ckpt_every=CHAOS_CKPT_EVERY,
        ),
    ]
    clean_wall = variants[0]["wall_s"]
    for v in variants:
        v["overhead"] = round(
            v["wall_s"] / clean_wall - 1.0 if clean_wall > 0 else 0.0, 4
        )
        if not v["digest_ok"]:
            raise AssertionError(
                "chaos variant %r drifted from the inline baseline digest"
                % v["variant"]
            )
    return {
        "stations": CHAOS_STATIONS,
        "shards": CHAOS_SHARDS,
        "ckpt_every": CHAOS_CKPT_EVERY,
        "crash_epoch": CHAOS_CRASH_EPOCH,
        "variants": variants,
    }


def run_grid(epoch_trace=False):
    grid = []
    for stations in STATION_GRID:
        base = None
        for shards in SHARD_GRID:
            # Trace only the largest shard count: one-shard points have
            # no handoff and each traced point overwrites epochs-*.jsonl.
            point = _run_point(
                stations, shards,
                epoch_trace=epoch_trace and shards == max(SHARD_GRID),
            )
            if base is None:
                base = point
            if point["digest"] != base["digest"]:
                raise AssertionError(
                    "shard invariance violated at %d stations: "
                    "%d shards digest %s != 1 shard %s"
                    % (stations, shards, point["digest"], base["digest"])
                )
            point["speedup"] = round(base["wall_s"] / point["wall_s"], 2)
            grid.append(point)
    return grid


def render(grid):
    lines = [
        "Sharded-city benchmark: stations-stepped/sec vs shard count",
        f"{SENSORS} sensors, {SIZE_M:.0f} m sq, epoch {EPOCH_S:.0f} s, "
        f"{DURATION_S:.0f} sim s, seed {SEED}",
        "",
        f"{'stations':>8} {'shards':>6} {'wall s':>8} {'st/s':>10} "
        f"{'handoff':>8} {'speedup':>8} {'hits':>6}",
    ]
    for p in grid:
        lines.append(
            f"{p['stations']:>8} {p['shards']:>6} {p['wall_s']:>8.3f} "
            f"{p['stations_per_s']:>10.0f} {p['handoff_fraction']:>8.4f} "
            f"{p['speedup']:>7.2f}x {p['hits']:>6}"
        )
    lines.append("")
    lines.append("digests identical across shard counts: OK")
    return "\n".join(lines)


def render_chaos(chaos):
    lines = [
        "",
        f"Chaos: {chaos['stations']} stations / {chaos['shards']} shards, "
        f"process mode, ckpt every {chaos['ckpt_every']} epochs, crash at "
        f"epoch {chaos['crash_epoch']}",
        "",
        f"{'variant':>22} {'wall s':>8} {'overhead':>9} {'ckpts':>6} "
        f"{'crash':>6} {'rollbk':>6} {'digest':>7}",
    ]
    for v in chaos["variants"]:
        lines.append(
            f"{v['variant']:>22} {v['wall_s']:>8.3f} "
            f"{v['overhead'] * 100:>8.1f}% {v['ckpt_writes']:>6} "
            f"{v['crashes']:>6} {v['rollback_epochs']:>6} "
            f"{'OK' if v['digest_ok'] else 'DRIFT':>7}"
        )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless max shards at --assert-at stations speeds up X-fold",
    )
    parser.add_argument(
        "--assert-at",
        type=int,
        default=2000,
        metavar="N",
        help="station count the --assert-speedup contract applies at "
        "(default 2000)",
    )
    parser.add_argument(
        "--epoch-trace",
        action="store_true",
        help="record per-epoch barrier spans for the max-shard points and "
        "export epoch_trace.json (Chrome trace-event JSON)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="append the process-mode checkpoint/recovery overhead section "
        "(clean vs checkpointed vs crash-and-recover)",
    )
    args = parser.parse_args(argv)

    grid = run_grid(epoch_trace=args.epoch_trace)
    doc = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "sensors": SENSORS,
        "size_m": SIZE_M,
        "epoch_s": EPOCH_S,
        "duration_s": DURATION_S,
        "seed": SEED,
        "grid": grid,
        "max_speedup": max(p["speedup"] for p in grid),
    }
    table = render(grid)
    if args.chaos:
        baseline = next(
            p["digest"] for p in grid if p["stations"] == CHAOS_STATIONS
        )
        doc["chaos"] = run_chaos(baseline)
        table += "\n" + render_chaos(doc["chaos"])
    artifact = out_dir() / ARTIFACT
    artifact.write_text(json.dumps(doc, indent=2) + "\n")
    emit("bench_shards", table)
    print(f"\nwrote {artifact}")

    if args.epoch_trace:
        from repro.obs.epochs import epoch_trace_dir, load_epoch_dir, write_epoch_trace

        records = load_epoch_dir(epoch_trace_dir(out_dir()))
        if records:
            trace = write_epoch_trace(records, out_dir() / "epoch_trace.json")
            print(f"wrote {trace}")
        else:
            print("no epoch spans recorded (all traced points single-shard?)")

    if args.assert_speedup is not None:
        gated = [
            p
            for p in grid
            if p["stations"] == args.assert_at and p["shards"] == max(SHARD_GRID)
        ]
        slow = [p for p in gated if p["speedup"] < args.assert_speedup]
        if not gated:
            print("FAIL: no %d-station grid point to assert on" % args.assert_at)
            return 1
        if slow:
            for p in slow:
                print(
                    "FAIL: %d stations / %d shards reached only %.2fx (< %.1fx)"
                    % (
                        p["stations"],
                        p["shards"],
                        p["speedup"],
                        args.assert_speedup,
                    )
                )
            return 1
        print(
            "speedup contract OK: >= %.1fx at %d stations / %d shards"
            % (args.assert_speedup, args.assert_at, max(SHARD_GRID))
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
