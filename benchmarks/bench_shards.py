#!/usr/bin/env python
"""Sharded-city benchmark: stations-stepped/sec vs shard count.

Runs the same :class:`~repro.sim.shards.ShardScenario` at every shard
count in the grid and measures throughput.  The win is algorithmic, not
parallel: each shard's per-epoch adjacency refresh only considers
sensors inside its own x-stripe (inflated by the motion-aware reach
margin), so total work falls roughly as ``O(N * S / k)`` even on a
single core.  Every grid point must reproduce the 1-shard digest
bit-for-bit — the determinism contract is re-checked on every benchmark
run, not just in the golden tests.

Writes ``BENCH_shards.json`` to the artefact directory
(``REPRO_ARTIFACT_DIR``, default ``benchmarks/out``) and prints the
table.  ``--assert-speedup X`` exits non-zero unless the 4-shard point
at ``--assert-at`` stations reaches an ``X``-fold speedup over 1 shard
— the contract CI's shard-smoke job enforces (2x at 2000 stations).

Usage::

    PYTHONPATH=src python benchmarks/bench_shards.py [--assert-speedup 2.0]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _shared import emit, out_dir  # noqa: E402
from repro.sim.shards import ShardScenario, run_sharded  # noqa: E402

SCHEMA = "repro.bench_shards/v1"
ARTIFACT = "BENCH_shards.json"

STATION_GRID = (2000, 4000)
SHARD_GRID = (1, 2, 4)
SENSORS = 400
SIZE_M = 2400.0
EPOCH_S = 2.0
DURATION_S = 240.0
SEED = 11


def _scenario(stations):
    return ShardScenario(
        stations=stations,
        sensors=SENSORS,
        duration=DURATION_S,
        seed=SEED,
        size_m=SIZE_M,
        epoch_s=EPOCH_S,
    )


def _run_point(stations, shards, epoch_trace=False):
    scenario = _scenario(stations)
    start = time.perf_counter()
    result = run_sharded(
        scenario,
        shards=shards,
        mode="inline",
        collect_states=False,
        epoch_trace=epoch_trace,
    )
    wall = time.perf_counter() - start
    # stations * epochs = station-steps performed, a size-invariant rate
    return {
        "stations": stations,
        "shards": shards,
        "wall_s": round(wall, 4),
        "stations_per_s": round(stations * result.epochs / wall, 1),
        "handoff_fraction": round(
            result.wall_handoff_s / wall if wall > 0 else 0.0, 4
        ),
        "hits": result.summary["hits"],
        "digest": result.digest(),
    }


def run_grid(epoch_trace=False):
    grid = []
    for stations in STATION_GRID:
        base = None
        for shards in SHARD_GRID:
            # Trace only the largest shard count: one-shard points have
            # no handoff and each traced point overwrites epochs-*.jsonl.
            point = _run_point(
                stations, shards,
                epoch_trace=epoch_trace and shards == max(SHARD_GRID),
            )
            if base is None:
                base = point
            if point["digest"] != base["digest"]:
                raise AssertionError(
                    "shard invariance violated at %d stations: "
                    "%d shards digest %s != 1 shard %s"
                    % (stations, shards, point["digest"], base["digest"])
                )
            point["speedup"] = round(base["wall_s"] / point["wall_s"], 2)
            grid.append(point)
    return grid


def render(grid):
    lines = [
        "Sharded-city benchmark: stations-stepped/sec vs shard count",
        f"{SENSORS} sensors, {SIZE_M:.0f} m sq, epoch {EPOCH_S:.0f} s, "
        f"{DURATION_S:.0f} sim s, seed {SEED}",
        "",
        f"{'stations':>8} {'shards':>6} {'wall s':>8} {'st/s':>10} "
        f"{'handoff':>8} {'speedup':>8} {'hits':>6}",
    ]
    for p in grid:
        lines.append(
            f"{p['stations']:>8} {p['shards']:>6} {p['wall_s']:>8.3f} "
            f"{p['stations_per_s']:>10.0f} {p['handoff_fraction']:>8.4f} "
            f"{p['speedup']:>7.2f}x {p['hits']:>6}"
        )
    lines.append("")
    lines.append("digests identical across shard counts: OK")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless max shards at --assert-at stations speeds up X-fold",
    )
    parser.add_argument(
        "--assert-at",
        type=int,
        default=2000,
        metavar="N",
        help="station count the --assert-speedup contract applies at "
        "(default 2000)",
    )
    parser.add_argument(
        "--epoch-trace",
        action="store_true",
        help="record per-epoch barrier spans for the max-shard points and "
        "export epoch_trace.json (Chrome trace-event JSON)",
    )
    args = parser.parse_args(argv)

    grid = run_grid(epoch_trace=args.epoch_trace)
    doc = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "sensors": SENSORS,
        "size_m": SIZE_M,
        "epoch_s": EPOCH_S,
        "duration_s": DURATION_S,
        "seed": SEED,
        "grid": grid,
        "max_speedup": max(p["speedup"] for p in grid),
    }
    artifact = out_dir() / ARTIFACT
    artifact.write_text(json.dumps(doc, indent=2) + "\n")
    emit("bench_shards", render(grid))
    print(f"\nwrote {artifact}")

    if args.epoch_trace:
        from repro.obs.epochs import epoch_trace_dir, load_epoch_dir, write_epoch_trace

        records = load_epoch_dir(epoch_trace_dir(out_dir()))
        if records:
            trace = write_epoch_trace(records, out_dir() / "epoch_trace.json")
            print(f"wrote {trace}")
        else:
            print("no epoch spans recorded (all traced points single-shard?)")

    if args.assert_speedup is not None:
        gated = [
            p
            for p in grid
            if p["stations"] == args.assert_at and p["shards"] == max(SHARD_GRID)
        ]
        slow = [p for p in gated if p["speedup"] < args.assert_speedup]
        if not gated:
            print("FAIL: no %d-station grid point to assert on" % args.assert_at)
            return 1
        if slow:
            for p in slow:
                print(
                    "FAIL: %d stations / %d shards reached only %.2fx (< %.1fx)"
                    % (
                        p["stations"],
                        p["shards"],
                        p["speedup"],
                        args.assert_speedup,
                    )
                )
            return 1
        print(
            "speedup contract OK: >= %.1fx at %d stations / %d shards"
            % (args.assert_speedup, args.assert_at, max(SHARD_GRID))
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
