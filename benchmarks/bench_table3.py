"""Table III: preliminary City-Hunter in the subway passage.

Paper shape: the same attacker that reaches h_b ~16 % in the canteen
collapses to ~4 % among fast walkers, because only the (locally useless)
head of its flat database ever gets received.
"""

from _shared import emit

from repro.experiments.tables import table3


def test_table3(benchmark):
    result = benchmark.pedantic(table3, rounds=1, iterations=1)
    emit("table3", result.render())
    passage = result.summaries()[0]
    assert 0.01 < passage.broadcast_hit_rate < 0.08  # paper: 4.1 %
    assert passage.total_clients > 1000  # paper: 1356
