#!/usr/bin/env python
"""Serving-layer benchmark: sustained probes/s vs clients x workers.

Pushes the same deterministic synthetic probe stream (broadcast-heavy
city traffic with a direct-probe minority and association feedback)
through a fresh :class:`~repro.serve.core.RankingCore` behind the async
:class:`~repro.serve.service.RankingService` at every grid point, and
measures sustained throughput plus exact p50/p99 burst-selection
latency.  The serving determinism contract — burst decisions
byte-identical at any worker count — is re-checked on every benchmark
run, not just in the differential tests.

Writes ``BENCH_serve.json`` to the artefact directory
(``REPRO_ARTIFACT_DIR``, default ``benchmarks/out``) and prints the
table.  ``--assert-probes X`` exits non-zero unless the best grid point
sustains at least ``X`` probes/s — the load-smoke floor CI's
serve-smoke job enforces.

The committed baseline (``benchmarks/baselines/BENCH_serve.json``)
carries deliberately conservative throughput numbers — a fraction of
what a dev machine measures — so the ``repro obs bench`` gate catches
order-of-magnitude regressions without tripping on runner noise.

When the committed baseline exists, every run also appends its gated
metrics to ``bench_trajectory.jsonl`` next to the artefact (the same
file CI's ``repro obs bench --trajectory`` writes), so local runs feed
the serve perf trajectory too.  ``--req-trace`` turns on per-probe
request tracing for the heaviest grid point and exports the Chrome
trace-event timeline as ``req_trace.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--assert-probes 2000]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _shared import emit, out_dir  # noqa: E402
from repro.obs.bench import (  # noqa: E402
    append_trajectory,
    compare_bench,
    load_bench_doc,
)
from repro.obs.reqtrace import (  # noqa: E402
    load_reqtrace_dir,
    reqtrace_dir,
    write_req_trace,
)
from repro.serve.workload import run_bench_grid  # noqa: E402

ARTIFACT = "BENCH_serve.json"
BASELINE = Path(__file__).resolve().parent / "baselines" / ARTIFACT
TRAJECTORY = "bench_trajectory.jsonl"
TRAJECTORY_TOLERANCE = 0.35

CLIENT_GRID = (20, 100)
WORKER_GRID = (1, 4)
N_EVENTS = 4000
SEED = 0
CITY_SEED = 42


def render(doc):
    lines = [
        "Serving benchmark: sustained probes/s vs clients x workers",
        f"{doc['n_events']} events per stream, seed {doc['seed']}, "
        f"best of {doc['repeats']} run(s) per point",
        "",
        f"{'clients':>8} {'workers':>8} {'probes/s':>10} {'p50 us':>8} "
        f"{'p99 us':>8} {'shed':>6} {'cache':>6}",
    ]
    for p in doc["grid"]:
        cache = (
            f"{p['rank_cache_hit_rate']:.2f}"
            if p["rank_cache_hit_rate"] is not None
            else "-"
        )
        lines.append(
            f"{p['clients']:>8} {p['workers']:>8} {p['probes_per_s']:>10} "
            f"{p['p50_us']:>8.1f} {p['p99_us']:>8.1f} "
            f"{p['shed_fraction']:>6.3f} {cache:>6}"
        )
    lines.append("")
    lines.append("decision digests identical across worker counts: OK")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--assert-probes",
        type=float,
        default=None,
        metavar="X",
        help="fail unless the best grid point sustains X probes/s",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="N",
        help="runs per grid point; the fastest is kept (default 1)",
    )
    parser.add_argument(
        "--req-trace",
        action="store_true",
        help="trace the heaviest grid point; export req_trace.json",
    )
    args = parser.parse_args(argv)

    doc = run_bench_grid(
        clients=CLIENT_GRID,
        workers=WORKER_GRID,
        n_events=N_EVENTS,
        seed=SEED,
        city_seed=CITY_SEED,
        repeats=args.repeats,
        req_trace=args.req_trace,
    )
    doc["python"] = platform.python_version()
    doc["machine"] = platform.machine()
    artifact = out_dir() / ARTIFACT
    artifact.write_text(json.dumps(doc, indent=2) + "\n")
    emit("bench_serve", render(doc))
    print(f"\nwrote {artifact}")

    if args.req_trace:
        records = load_reqtrace_dir(reqtrace_dir())
        if not records:
            print("FAIL: --req-trace captured no request spans")
            return 1
        trace_path = out_dir() / "req_trace.json"
        write_req_trace(records, trace_path)
        print(f"wrote {trace_path} ({len(records)} span(s))")

    # Feed the serve perf trajectory on every local run too, not only
    # from CI's `repro obs bench --trajectory` step.  Informational:
    # the regression *gate* stays in CI where tolerance is pinned.
    if BASELINE.exists():
        report = compare_bench(
            doc, load_bench_doc(BASELINE), tolerance=TRAJECTORY_TOLERANCE
        )
        trajectory = append_trajectory(
            out_dir() / TRAJECTORY,
            report,
            meta={"source": "bench_serve.py"},
        )
        print(
            "trajectory %s -> %s (vs committed baseline)"
            % ("ok" if report["ok"] else "REGRESSED", trajectory)
        )

    if args.assert_probes is not None:
        best = doc["max_probes_per_s"]
        if best < args.assert_probes:
            print(
                "FAIL: best grid point sustained only %.0f probes/s "
                "(< %.0f)" % (best, args.assert_probes)
            )
            return 1
        print(
            "load floor OK: %.0f probes/s >= %.0f"
            % (best, args.assert_probes)
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
