"""Fig. 5: advanced City-Hunter, hourly 8am-8pm, four venues.

Paper shapes: client volume shows each venue's temporal pattern (rush
peaks in the passage/station, mealtimes in the canteen); h > h_b in
every slot; venue-average h_b ~12 % (passage), ~17.9 % (canteen),
~14 % (shopping centre), ~16.6 % (railway station); rates peak with the
crowds.

This is the heavyweight benchmark (48 one-hour simulated deployments,
a few minutes of wall clock); Fig. 6 reuses the same runs via the
shared cache.
"""

import numpy as np
from _shared import emit, fig5_results


def test_fig5(benchmark):
    results = benchmark.pedantic(fig5_results, rounds=1, iterations=1)
    text = "\n\n".join(results[key].render() for key in results)
    emit("fig5", text)

    avg = {key: res.average_h_b() for key, res in results.items()}

    # Venue bands (paper: 12 / 17.9 / 14 / 16.6 %).
    assert 0.08 < avg["passage"] < 0.17
    assert 0.13 < avg["canteen"] < 0.24
    assert 0.09 < avg["shopping_center"] < 0.20
    assert 0.10 < avg["railway_station"] < 0.22

    # Mobility ordering: sitting crowds beat walking crowds.
    assert avg["canteen"] > avg["passage"]

    for res in results.values():
        for slot in res.slots:
            # h >= h_b in every single test (direct probers are easier).
            assert slot.h >= slot.h_b

    # Temporal pattern: passage rush slots carry more clients than the
    # midday trough, and their h_b is at least comparable.
    passage = results["passage"].slots
    rush = [s for s in passage if s.rush]
    calm = [s for s in passage if not s.rush]
    assert min(s.summary.total_clients for s in rush) > max(
        s.summary.total_clients for s in calm
    )
    assert np.mean([s.h_b for s in rush]) > np.mean([s.h_b for s in calm]) - 0.02
