#!/usr/bin/env python
"""Hot-path benchmark: spatial-index vs brute-force frame delivery.

Builds a city-block-scale world — stations spread over a square
kilometre-plus area, a share of them walking, every one broadcasting a
probe every couple of seconds — and runs the *same* scripted event load
through the medium twice per grid point: spatial index on, then off
(``index=False``, the pre-index brute-force scan).  Both runs must
deliver the identical frame count (the equivalence contract, re-checked
here on every benchmark run), and the wall-clock ratio is the headline
speedup number.

Writes ``benchmarks/out/BENCH_hotpath.json`` and prints the table.
``--assert-speedup X`` exits non-zero unless every grid point at
``--assert-at`` stations or more reaches an ``X``-fold speedup — the
contract CI's perf-smoke job enforces (2x at >= 200 stations).

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--assert-speedup 2.0]
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _shared import emit, out_dir  # noqa: E402
from repro.dot11.frames import ProbeRequest  # noqa: E402
from repro.dot11.medium import DEFAULT_INDEX_CELL_M, Medium  # noqa: E402
from repro.geo.point import Point  # noqa: E402
from repro.sim.simulation import Simulation  # noqa: E402

SCHEMA = "repro.bench_hotpath/v1"
ARTIFACT = "BENCH_hotpath.json"

STATION_GRID = (50, 100, 200, 400)
SIM_SECONDS = (30.0,)
AREA_M = 1500.0
TX_RANGE_M = 55.0
PROBE_INTERVAL_S = 2.0
MOVING_SHARE = 0.5
WALK_SPEED_MPS = 1.4


class BenchStation:
    """Walking (or parked) probe sender that counts what it hears."""

    __slots__ = ("mac", "_ox", "_oy", "_vx", "_vy", "max_speed_mps", "heard")

    def __init__(self, mac, origin, velocity):
        self.mac = mac
        self._ox, self._oy = origin
        self._vx, self._vy = velocity
        self.max_speed_mps = math.hypot(*velocity)
        self.heard = 0

    def position_at(self, time):
        return Point(self._ox + self._vx * time, self._oy + self._vy * time)

    def receive(self, frame, time):
        self.heard += 1


def _build(n_stations, layout_seed, index):
    rng = np.random.default_rng(layout_seed)
    sim = Simulation(seed=layout_seed)
    medium = Medium(sim, index=index)
    stations = []
    for i in range(n_stations):
        origin = (rng.uniform(0, AREA_M), rng.uniform(0, AREA_M))
        if rng.random() < MOVING_SHARE:
            heading = rng.uniform(0, 2 * math.pi)
            speed = rng.uniform(0.3, 1.0) * WALK_SPEED_MPS
            velocity = (speed * math.cos(heading), speed * math.sin(heading))
        else:
            velocity = (0.0, 0.0)
        st = BenchStation(f"02:be:00:00:{i >> 8:02x}:{i & 0xFF:02x}", origin, velocity)
        stations.append(st)
        medium.attach(st, TX_RANGE_M)

    def probe_loop(station):
        medium.transmit(station, ProbeRequest(station.mac))
        sim.at(PROBE_INTERVAL_S, probe_loop, station)

    for st in stations:
        sim.at(float(rng.uniform(0, PROBE_INTERVAL_S)), probe_loop, st)
    return sim, medium, stations


def _run_point(n_stations, sim_seconds, layout_seed=7):
    point = {"stations": n_stations, "sim_seconds": sim_seconds}
    delivered = {}
    for label, index in (("index", True), ("brute", False)):
        sim, medium, stations = _build(n_stations, layout_seed, index)
        start = time.perf_counter()
        sim.run(sim_seconds)
        wall = time.perf_counter() - start
        delivered[label] = medium.frames_delivered
        point[label] = {
            "wall_s": round(wall, 4),
            "frames_per_s": (
                round(medium.frames_delivered / wall) if wall > 0 else None
            ),
        }
        if index:
            point["index"]["queries"] = medium.index_queries
            point["index"]["mean_candidates"] = (
                round(medium.index_candidates / medium.index_queries, 1)
                if medium.index_queries
                else None
            )
    if delivered["index"] != delivered["brute"]:
        raise AssertionError(
            "equivalence violated at %d stations: %d != %d delivered"
            % (n_stations, delivered["index"], delivered["brute"])
        )
    point["frames_delivered"] = delivered["index"]
    point["speedup"] = round(
        point["brute"]["wall_s"] / point["index"]["wall_s"], 2
    )
    return point


def run_grid():
    grid = []
    for sim_seconds in SIM_SECONDS:
        for n_stations in STATION_GRID:
            grid.append(_run_point(n_stations, sim_seconds))
    return grid


def render(grid):
    lines = [
        "Hot-path benchmark: broadcast delivery, index vs brute force",
        f"area {AREA_M:.0f} m sq, tx {TX_RANGE_M:.0f} m, probe every "
        f"{PROBE_INTERVAL_S:.0f} s, cell {DEFAULT_INDEX_CELL_M:.0f} m",
        "",
        f"{'stations':>8} {'sim s':>6} {'frames':>8} "
        f"{'index s':>8} {'brute s':>8} {'speedup':>8} {'idx fr/s':>9}",
    ]
    for p in grid:
        lines.append(
            f"{p['stations']:>8} {p['sim_seconds']:>6.0f} "
            f"{p['frames_delivered']:>8} {p['index']['wall_s']:>8.3f} "
            f"{p['brute']['wall_s']:>8.3f} {p['speedup']:>7.2f}x "
            f"{p['index']['frames_per_s']:>9}"
        )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless every point at --assert-at+ stations speeds up X-fold",
    )
    parser.add_argument(
        "--assert-at",
        type=int,
        default=200,
        metavar="N",
        help="station count from which --assert-speedup applies (default 200)",
    )
    args = parser.parse_args(argv)

    grid = run_grid()
    doc = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cell_m": DEFAULT_INDEX_CELL_M,
        "area_m": AREA_M,
        "tx_range_m": TX_RANGE_M,
        "probe_interval_s": PROBE_INTERVAL_S,
        "moving_share": MOVING_SHARE,
        "grid": grid,
        "max_speedup": max(p["speedup"] for p in grid),
    }
    artifact = out_dir() / ARTIFACT
    artifact.write_text(json.dumps(doc, indent=2) + "\n")
    emit("bench_hotpath", render(grid))
    print(f"\nwrote {artifact}")

    if args.assert_speedup is not None:
        slow = [
            p
            for p in grid
            if p["stations"] >= args.assert_at
            and p["speedup"] < args.assert_speedup
        ]
        if slow:
            for p in slow:
                print(
                    "FAIL: %d stations reached only %.2fx (< %.1fx)"
                    % (p["stations"], p["speedup"], args.assert_speedup)
                )
            return 1
        print(
            "speedup contract OK: >= %.1fx at >= %d stations"
            % (args.assert_speedup, args.assert_at)
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
