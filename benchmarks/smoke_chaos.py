#!/usr/bin/env python
"""CI chaos smoke: a small faulted batch with an injected worker crash.

Exercises the whole robustness surface in one go:

* every fault layer enabled (Gilbert–Elliott channel, attacker radio
  outages, corrupted/missing WiGLE records) on two of four runs;
* one spec scheduled to crash its first worker attempt, so the batch
  must retry it and still return four RunSummary results;
* a checkpoint artefact, so a second ``run_specs`` invocation must
  resume every run from disk without re-executing anything;
* fault counters asserted present in the merged ``metrics.json``.

Run:  REPRO_WORKERS=4 python benchmarks/smoke_chaos.py
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import parallel  # noqa: E402
from repro.experiments.parallel import (  # noqa: E402
    RunSpec,
    RunSummary,
    derive_run_seeds,
    run_specs,
)
from repro.faults.plan import (  # noqa: E402
    FaultPlan,
    GilbertElliottParams,
    OutageParams,
    WigleFaultParams,
)
from repro.obs.artifacts import artifact_path  # noqa: E402
from repro.obs.registry import validate_metrics_doc  # noqa: E402

CHAOS_PLAN = FaultPlan(
    seed=11,
    channel=GilbertElliottParams(p_bad=0.05, p_good=0.3, loss_bad=0.7),
    outages=OutageParams(rate_per_hour=24.0, duration_mean_s=20.0),
    wigle=WigleFaultParams(corrupt_fraction=0.1, missing_fraction=0.05),
)
CRASH_PLAN = FaultPlan(
    seed=CHAOS_PLAN.seed,
    channel=CHAOS_PLAN.channel,
    outages=CHAOS_PLAN.outages,
    wigle=CHAOS_PLAN.wigle,
    worker_crashes=1,
)


def _specs():
    seeds = derive_run_seeds(23, 4)
    plans = [None, CHAOS_PLAN, CRASH_PLAN, None]
    return [
        RunSpec(
            attacker="cityhunter",
            venue="canteen",
            seed=seed,
            duration=300.0,
            fidelity="burst",
            tag=f"chaos:{i}",
            faults=plan,
        )
        for i, (seed, plan) in enumerate(zip(seeds, plans))
    ]


def main() -> int:
    specs = _specs()
    results = run_specs(
        specs, checkpoint_name="chaos_checkpoint", retry_backoff=0.05
    )
    assert len(results) == len(specs)
    assert all(isinstance(r, RunSummary) for r in results), (
        "chaos batch lost runs: "
        + ", ".join(f"{r.spec.tag}={r.error}" for r in results if r.failed)
    )
    print(f"batch completed: {len(results)} runs "
          f"(one injected worker crash absorbed)")

    # Resume: a second invocation must restore every run from the
    # checkpoint, bit-identically, without executing anything.
    def _refuse(spec):
        raise AssertionError(f"resume re-executed {spec.tag}")

    real = parallel.execute_spec
    parallel.execute_spec = _refuse
    try:
        resumed = run_specs(specs, checkpoint_name="chaos_checkpoint")
    finally:
        parallel.execute_spec = real
    assert resumed == results, "resumed batch differs from original"
    ckpt = artifact_path("chaos_checkpoint", suffix=".jsonl")
    assert ckpt.exists(), f"missing checkpoint artefact: {ckpt}"
    print(f"resume OK: {len(resumed)} runs restored from {ckpt}")

    metrics = artifact_path("metrics")
    assert metrics.exists(), f"missing metrics artefact: {metrics}"
    doc = json.loads(metrics.read_text())
    validate_metrics_doc(doc)
    counters = doc["merged"]["counters"]
    for prefix in (
        "faults.frames_lost",
        "faults.outages",
        "faults.outage_downtime_s",
        "faults.wigle_records_skipped",
        "seeding.textgen_fallback",
    ):
        matching = {k: v for k, v in counters.items() if k.startswith(prefix)}
        assert matching, f"no merged counter under {prefix!r}"
        for key, value in sorted(matching.items()):
            print(f"  {key} = {value:g}")

    outage_events = [
        e
        for run in doc["runs"]
        for e in run["events"]
        if e.get("kind") == "fault.outage"
    ]
    assert outage_events, "no fault.outage events retained"
    print(f"  fault.outage events retained: {len(outage_events)}")

    # The fault-free runs must not have paid for any of it: their
    # snapshots carry no fault counters at all.
    for run in doc["runs"]:
        if run["tag"] in ("chaos:0", "chaos:3"):
            assert not any(
                k.startswith("faults.") for k in run["metrics"]["counters"]
            ), f"fault counters leaked into fault-free run {run['tag']}"
    print("fault-free runs stayed clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
