"""Ablations of City-Hunter's design choices (DESIGN.md section 5).

Each benchmark switches one mechanism off (or sweeps it) and reports
the broadcast hit rate, demonstrating that every design element the
paper argues for actually carries weight in the reproduction:

* untried lists (Section III-A improvement 1),
* WiGLE seeding (Section III-B improvement 2),
* heat-value vs AP-count weighting (Section IV-B),
* adaptive vs fixed PB/FB splits and ghost exploration (Section IV-C),
* the de-auth and carrier extensions (Section V-B).
"""

from _shared import emit

from repro.attacks.deauth import DeauthEmitter
from repro.core.config import CityHunterConfig
from repro.experiments.attackers import make_cityhunter
from repro.experiments.calibration import default_city
from repro.experiments.parallel import RunSpec, run_specs
from repro.experiments.runner import shared_wigle
from repro.experiments.scenarios import ScenarioConfig, build_scenario
from repro.population.pnl import CARRIER_SSIDS, PnlModel
from repro.util.tables import render_table

SEED = 7
DURATION = 1800.0


def _spec(config=None, venue="passage", use_heat=True, pnl_model=None, seed=SEED):
    return RunSpec(
        attacker="cityhunter",
        venue=venue,
        seed=seed,
        duration=DURATION,
        attacker_config=config,
        use_heat=use_heat,
        pnl_model=pnl_model,
    )


def _run_all(*specs):
    """Fan the ablation variants out over the parallel executor."""
    return run_specs(specs, timings_name="timings_ablation")


def test_ablation_untried_lists(benchmark):
    """Forgetting what was sent (MANA-style resending) hurts dwellers."""

    def run():
        return _run_all(
            _spec(venue="canteen"),
            _spec(CityHunterConfig(untried_lists=False), venue="canteen"),
        )

    with_lists, without = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_untried",
        render_table(
            ["variant", "h_b"],
            [
                ["untried lists ON", f"{100 * with_lists.h_b:.1f}%"],
                ["untried lists OFF", f"{100 * without.h_b:.1f}%"],
            ],
            title="Ablation: per-client untried lists (canteen)",
        ),
    )
    assert with_lists.h_b > 1.5 * without.h_b


def test_ablation_wigle_seeding(benchmark):
    """An unseeded database (direct probes only) starves the attack."""

    def run():
        return _run_all(
            _spec(),
            _spec(CityHunterConfig(n_nearby=0, n_popular=0)),
        )

    seeded, unseeded = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_wigle",
        render_table(
            ["variant", "h_b"],
            [
                ["WiGLE seeding ON", f"{100 * seeded.h_b:.1f}%"],
                ["WiGLE seeding OFF", f"{100 * unseeded.h_b:.1f}%"],
            ],
            title="Ablation: WiGLE database seeding (passage)",
        ),
    )
    assert seeded.h_b > 2 * unseeded.h_b


def test_ablation_heat_vs_count_weighting(benchmark):
    """Heat-rank weighting should not lose to plain count weighting."""

    def run():
        return _run_all(_spec(use_heat=True), _spec(use_heat=False))

    heat, count = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_heat",
        render_table(
            ["variant", "h_b"],
            [
                ["weights by heat value", f"{100 * heat.h_b:.1f}%"],
                ["weights by AP count", f"{100 * count.h_b:.1f}%"],
            ],
            title="Ablation: initial weighting criterion (passage)",
        ),
    )
    assert heat.h_b > count.h_b - 0.03


def test_ablation_adaptive_split(benchmark):
    """Adaptive PB/FB sizing vs frozen splits."""

    def run():
        labels = ["adaptive (init 28/12)"] + [
            f"fixed {pb}/{40 - pb}" for pb in (36, 28, 20)
        ]
        results = _run_all(
            _spec(venue="canteen"),
            *(
                _spec(CityHunterConfig(initial_pb=pb, adaptive=False), venue="canteen")
                for pb in (36, 28, 20)
            ),
        )
        return list(zip(labels, results))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_adaptive",
        render_table(
            ["variant", "h_b"],
            [[label, f"{100 * r.h_b:.1f}%"] for label, r in rows],
            title="Ablation: PB/FB split policy (canteen)",
        ),
    )
    best_fixed = max(r.h_b for label, r in rows[1:])
    assert rows[0][1].h_b > best_fixed - 0.04


def test_ablation_ghost_exploration(benchmark):
    """Ghost-list share sweep: 0 %, 10 % (paper), 25 %."""

    def run():
        picks = (0, 2, 5)
        results = _run_all(
            *(
                _spec(CityHunterConfig(ghost_picks=p), venue="canteen")
                for p in picks
            )
        )
        return list(zip(picks, results))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_ghost",
        render_table(
            ["ghost picks per buffer", "h_b"],
            [[str(p), f"{100 * r.h_b:.1f}%"] for p, r in rows],
            title="Ablation: ghost-list exploration share (canteen)",
        ),
    )
    # Exploration must not collapse the hit rate at any tested share.
    rates = [r.h_b for _, r in rows]
    assert min(rates) > 0.6 * max(rates)


def test_ablation_deauth_extension(benchmark):
    """A crowd camped on the venue AP: City-Hunter needs the de-auth
    emitter to reach it at all (Section V-B)."""

    def run_one(with_deauth):
        city = default_city()
        wigle = shared_wigle()
        config = ScenarioConfig(
            venue_name="University Canteen",
            mobility="static",
            people_per_min=30.0,
            duration=DURATION,
            camped_share=1.0,
            include_camped=True,
            seed=SEED,
        )
        build = build_scenario(
            city, wigle, config, make_cityhunter(wigle, city.heatmap)
        )
        if with_deauth:
            build.sim.add_entity(
                DeauthEmitter(
                    build.venue.region.center,
                    build.medium,
                    [build.venue_ap.mac],
                    period=15.0,
                    session=build.attacker.session,
                )
            )
        build.sim.run(DURATION + 30.0)
        camped = [
            p
            for p in build.phones
            if any(
                s in p.person.pnl and p.person.pnl[s].auto_joinable
                for s in build.venue.wifi_ssids
            )
        ]
        captured = sum(1 for p in camped if p.connected_bssid == build.attacker.mac)
        return len(camped), captured

    def run():
        return run_one(False), run_one(True)

    (total_off, hits_off), (total_on, hits_on) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "ablation_deauth",
        render_table(
            ["variant", "camped clients", "captured"],
            [
                ["no deauth", total_off, hits_off],
                ["deauth emitter", total_on, hits_on],
            ],
            title="Ablation: de-authentication extension (camped canteen)",
        ),
    )
    assert hits_off == 0
    assert hits_on > 0


def test_ablation_carrier_extension(benchmark):
    """Preloading carrier SSIDs catches iOS subscribers that neither
    WiGLE nor direct probes can reveal (Section V-B)."""

    ios_heavy = PnlModel(ios_share=0.75)

    def run():
        return _run_all(
            _spec(venue="canteen", pnl_model=ios_heavy),
            _spec(
                CityHunterConfig(carrier_ssids=tuple(CARRIER_SSIDS)),
                venue="canteen",
                pnl_model=ios_heavy,
            ),
        )

    plain, carrier = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_carrier",
        render_table(
            ["variant", "h_b"],
            [
                ["no carrier SSIDs", f"{100 * plain.h_b:.1f}%"],
                ["carrier SSIDs preloaded", f"{100 * carrier.h_b:.1f}%"],
            ],
            title="Ablation: carrier-SSID extension (iOS-heavy canteen crowd)",
        ),
    )
    assert carrier.h_b > plain.h_b + 0.03
