"""Table II: MANA vs preliminary City-Hunter in the canteen.

Paper shape: City-Hunter's untried lists + WiGLE seeding lift h from
6.6 % to ~19 % and h_b from 3 % to ~16 %, with ~74 % of broadcast hits
coming from WiGLE-seeded SSIDs.
"""

from _shared import emit

from repro.experiments.tables import table2, wigle_share_of_broadcast_hits


def test_table2(benchmark):
    result = benchmark.pedantic(table2, rounds=1, iterations=1)
    share = wigle_share_of_broadcast_hits(result.runs[1])
    emit(
        "table2",
        result.render()
        + f"\n  WiGLE share of City-Hunter broadcast hits: {100 * share:.0f}%"
        " (paper: ~74%)",
    )
    mana, hunter = result.summaries()
    assert hunter.broadcast_hit_rate > 3 * mana.broadcast_hit_rate
    assert share > 0.6
