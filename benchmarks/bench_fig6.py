"""Fig. 6: breakdown of the SSIDs that hit broadcast clients.

Paper shapes (over the same 48 runs as Fig. 5): WiGLE-sourced SSIDs
dominate direct-probe-sourced ones (~3.5-5x in the passage), but the
direct contribution grows in rush hours; the popularity buffer
dominates the freshness buffer everywhere, with freshness mattering
relatively more in the canteen (1:3-1:5) than in the passage
(1:6-1:10) — companions sit together at lunch.
"""

from _shared import emit, fig5_results


def test_fig6(benchmark):
    results = benchmark.pedantic(fig5_results, rounds=1, iterations=1)
    text = "\n\n".join(results[key].render_breakdown() for key in results)
    emit("fig6", text)

    def totals(res):
        wigle = sum(s.source.from_wigle for s in res.slots)
        direct = sum(s.source.from_direct for s in res.slots)
        pop = sum(s.buffers.from_popularity for s in res.slots)
        fresh = sum(s.buffers.from_freshness for s in res.slots)
        return wigle, direct, pop, fresh

    for key, res in results.items():
        wigle, direct, pop, fresh = totals(res)
        assert wigle > direct, key  # WiGLE contributes more everywhere
        assert pop > fresh, key  # popularity dominates everywhere

    # Freshness is relatively stronger where people sit in groups.
    _, _, pop_c, fresh_c = totals(results["canteen"])
    _, _, pop_p, fresh_p = totals(results["passage"])
    assert fresh_c / max(1, pop_c) > fresh_p / max(1, pop_p)

    # Direct probes contribute relatively more in rush hours (passage).
    passage = results["passage"].slots
    def direct_share(slots):
        d = sum(s.source.from_direct for s in slots)
        w = sum(s.source.from_wigle for s in slots)
        return d / max(1, d + w)

    rush_share = direct_share([s for s in passage if s.rush])
    calm_share = direct_share([s for s in passage if not s.rush])
    assert rush_share > calm_share - 0.02
