"""Fig. 2: how many SSIDs each client actually receives.

Paper shapes: (a) connected canteen clients were sent 20-250 SSIDs
(mean ~130) before hitting — far beyond MANA's 40-ceiling; (b) in the
passage ~70 % of clients received exactly one 40-burst and ~22 % two.
"""

from _shared import emit

from repro.experiments.figures import fig2


def test_fig2(benchmark):
    result = benchmark.pedantic(fig2, rounds=1, iterations=1)
    emit("fig2", result.render())

    positions = result.canteen_hit_positions
    assert max(positions) > 150  # untried lists reach deep
    assert min(positions) < 40
    assert 50 < sum(positions) / len(positions) < 200  # paper mean ~130

    hist = result.passage_sent_histogram
    assert 0.55 < hist.fraction(40) < 0.9  # paper ~70 %
    assert 0.08 < hist.fraction(80) < 0.35  # paper ~22 %
