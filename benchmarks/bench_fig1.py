"""Fig. 1: MANA's database grows, its real-time efficiency doesn't.

Paper shape: both the database size and the cumulative connection count
rise through the 30 minutes, but the windowed hit rate h_b^r stays flat
— more harvested SSIDs do not help when only the head-40 is ever
received.
"""

import numpy as np
from _shared import emit

from repro.experiments.figures import fig1


def test_fig1(benchmark):
    result = benchmark.pedantic(fig1, rounds=1, iterations=1)
    emit("fig1", result.render())

    sizes = [s for _, s in result.db_size]
    assert sizes[-1] > 3 * sizes[0]  # the database grew a lot

    # ... but late-window efficiency shows no significant lift over
    # early windows (compare means of halves, tolerate noise).
    rates = [w.rate for w in result.windows if w.broadcast_clients > 0]
    early = np.mean(rates[1 : len(rates) // 2])
    late = np.mean(rates[len(rates) // 2 :])
    assert late < early + 0.05
