"""Table I: KARMA vs MANA in the canteen (30-minute deployments).

Paper row shapes: KARMA h ~3.9 % with h_b = 0; MANA h ~6.6 % with
h_b ~3 % — the broadcast-probe gap that motivates City-Hunter.
"""

from _shared import emit

from repro.experiments.tables import table1


def test_table1(benchmark):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    emit("table1", result.render())
    karma, mana = result.summaries()
    assert karma.connected_broadcast == 0
    assert mana.broadcast_hit_rate > 0
    assert mana.hit_rate > karma.hit_rate
