#!/usr/bin/env python
"""CI bench smoke: a reduced-slot Fig. 5 grid under the parallel executor.

Runs the midday slot for all four venues (4 runs fanned out over
``REPRO_WORKERS`` workers, 15 simulated minutes each), emits the
rendered figure to ``benchmarks/out/fig5_smoke.txt`` and leaves the
executor's ``benchmarks/out/timings.json`` and ``metrics.json`` behind
so CI can archive the speedup numbers and the merged observability
snapshot.  The metrics artefact is schema-validated here, so a malformed
export fails the job instead of shipping a broken artefact.

Run:  REPRO_TRACE=1 REPRO_WORKERS=4 python benchmarks/smoke_fig5.py
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _shared import emit, fig5_results  # noqa: E402


def main() -> int:
    results = fig5_results(slot_subset=(4,), slot_duration=900.0)
    emit(
        "fig5_smoke",
        "\n\n".join(results[key].render() for key in results),
    )
    for key, res in results.items():
        assert res.slots, f"no slot results for {key}"
        for slot in res.slots:
            assert slot.h >= slot.h_b, f"h < h_b at {key} slot {slot.slot}"
    from repro.analysis.observability import provenance_breakdown
    from repro.obs.artifacts import artifact_path
    from repro.obs.registry import validate_metrics_doc

    timings = artifact_path("timings")
    if timings.exists():
        print(f"\ntimings artefact: {timings}")
        print(timings.read_text())

    metrics = artifact_path("metrics")
    assert metrics.exists(), f"missing metrics artefact: {metrics}"
    doc = json.loads(metrics.read_text())
    validate_metrics_doc(doc)
    merged = doc["merged"]
    assert merged["counters"].get("run.count"), "merged metrics lost run.count"
    print(f"metrics artefact: {metrics} (schema {doc['schema']}, "
          f"{doc['run_count']} runs, {doc['workers']} workers)")
    for prov, sent, hits, _misses, rate in provenance_breakdown(merged):
        print(f"  {prov:18s} sent={sent:7d} hits={hits:4d} "
              f"rate={100 * rate:5.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
