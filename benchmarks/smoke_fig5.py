#!/usr/bin/env python
"""CI bench smoke: a reduced-slot Fig. 5 grid under the parallel executor.

Runs the midday slot for all four venues (4 runs fanned out over
``REPRO_WORKERS`` workers, 15 simulated minutes each), emits the
rendered figure to ``benchmarks/out/fig5_smoke.txt`` and leaves the
executor's ``benchmarks/out/timings.json`` behind so CI can archive the
speedup numbers.

Run:  REPRO_WORKERS=4 python benchmarks/smoke_fig5.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _shared import emit, fig5_results  # noqa: E402


def main() -> int:
    results = fig5_results(slot_subset=(4,), slot_duration=900.0)
    emit(
        "fig5_smoke",
        "\n\n".join(results[key].render() for key in results),
    )
    for key, res in results.items():
        assert res.slots, f"no slot results for {key}"
        for slot in res.slots:
            assert slot.h >= slot.h_b, f"h < h_b at {key} slot {slot.slot}"
    timings = pathlib.Path("benchmarks/out/timings.json")
    if timings.exists():
        print(f"\ntimings artefact: {timings}")
        print(timings.read_text())
    return 0


if __name__ == "__main__":
    sys.exit(main())
