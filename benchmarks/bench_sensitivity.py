"""Sensitivity of City-Hunter to crowd density and mobility.

The paper's framing ("public places with different crowd density ...
and different mobility pattern") as a controlled sweep: broadcast hit
rate vs arrival rate (density) and vs walking speed (mobility) at the
subway passage.  Expectations: h_b rises mildly with density (a richer
direct-probe stream feeds the database and groups feed the freshness
buffer) and falls with walking speed (fewer scans in radio range).

Both sweeps run through the declarative grid runner, whose cells fan
out over the parallel executor (``REPRO_WORKERS``).
"""

from _shared import emit

from repro.experiments.calibration import venue_profile
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.sweeps import sweep
from repro.util.tables import render_table

SEED = 7
DURATION = 1500.0


def _passage_base(**overrides):
    profile = venue_profile("passage")
    return ScenarioConfig(
        venue_name=profile.venue_name,
        mobility="corridor",
        people_per_min=profile.people_per_min_30min_test,
        duration=DURATION,
        seed=SEED,
        fidelity="burst",
        **overrides,
    )


def _sweep_passage(grid):
    return sweep(None, None, "cityhunter", _passage_base(), grid)


def test_sensitivity_crowd_density(benchmark):
    def run():
        return _sweep_passage({"people_per_min": [10.0, 25.0, 50.0, 100.0]})

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "sensitivity_density",
        render_table(
            ["arrivals (people/min)", "clients", "h_b"],
            [
                [f"{cell.params['people_per_min']:.0f}",
                 cell.summary.total_clients,
                 f"{100 * cell.h_b:.1f}%"]
                for cell in result.cells
            ],
            title="Sensitivity: crowd density at the passage",
        ),
    )
    rates = [cell.h_b for cell in result.cells]
    # Denser crowds never hurt, and the densest beats the sparsest.
    assert rates[-1] > rates[0] - 0.02
    assert all(r > 0.05 for r in rates)


def test_sensitivity_walking_speed(benchmark):
    def run():
        return _sweep_passage({"walk_speed_mean": [0.7, 1.3, 2.2]})

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "sensitivity_speed",
        render_table(
            ["walk speed (m/s)", "clients", "h_b"],
            [
                [f"{cell.params['walk_speed_mean']:.1f}",
                 cell.summary.total_clients,
                 f"{100 * cell.h_b:.1f}%"]
                for cell in result.cells
            ],
            title="Sensitivity: walking speed at the passage",
        ),
    )
    rates = [cell.h_b for cell in result.cells]
    # Slower crowds are easier prey: strictly more scans in range.
    assert rates[0] > rates[-1]
