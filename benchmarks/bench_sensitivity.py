"""Sensitivity of City-Hunter to crowd density and mobility.

The paper's framing ("public places with different crowd density ...
and different mobility pattern") as a controlled sweep: broadcast hit
rate vs arrival rate (density) and vs walking speed (mobility) at the
subway passage.  Expectations: h_b rises mildly with density (a richer
direct-probe stream feeds the database and groups feed the freshness
buffer) and falls with walking speed (fewer scans in radio range).
"""

from _shared import emit

from repro.experiments.attackers import make_cityhunter
from repro.experiments.calibration import default_city, venue_profile
from repro.experiments.runner import run_experiment, shared_wigle
from repro.experiments.scenarios import ScenarioConfig, build_scenario
from repro.analysis.metrics import summarize
from repro.util.tables import render_table

SEED = 7
DURATION = 1500.0


def _run_passage(people_per_min=None, walk_speed=1.3):
    city = default_city()
    wigle = shared_wigle()
    profile = venue_profile("passage")
    config = ScenarioConfig(
        venue_name=profile.venue_name,
        mobility="corridor",
        people_per_min=(
            people_per_min
            if people_per_min is not None
            else profile.people_per_min_30min_test
        ),
        duration=DURATION,
        seed=SEED,
        fidelity="burst",
        walk_speed_mean=walk_speed,
    )
    build = build_scenario(
        city, wigle, config, make_cityhunter(wigle, city.heatmap)
    )
    build.sim.run(DURATION + 30.0)
    return summarize(build.attacker.session)


def test_sensitivity_crowd_density(benchmark):
    def run():
        rows = []
        for rate in (10.0, 25.0, 50.0, 100.0):
            s = _run_passage(people_per_min=rate)
            rows.append((rate, s))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "sensitivity_density",
        render_table(
            ["arrivals (people/min)", "clients", "h_b"],
            [
                [f"{rate:.0f}", s.total_clients,
                 f"{100 * s.broadcast_hit_rate:.1f}%"]
                for rate, s in rows
            ],
            title="Sensitivity: crowd density at the passage",
        ),
    )
    rates = [s.broadcast_hit_rate for _, s in rows]
    # Denser crowds never hurt, and the densest beats the sparsest.
    assert rates[-1] > rates[0] - 0.02
    assert all(r > 0.05 for r in rates)


def test_sensitivity_walking_speed(benchmark):
    def run():
        rows = []
        for speed in (0.7, 1.3, 2.2):
            s = _run_passage(walk_speed=speed)
            rows.append((speed, s))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "sensitivity_speed",
        render_table(
            ["walk speed (m/s)", "clients", "h_b"],
            [
                [f"{speed:.1f}", s.total_clients,
                 f"{100 * s.broadcast_hit_rate:.1f}%"]
                for speed, s in rows
            ],
            title="Sensitivity: walking speed at the passage",
        ),
    )
    rates = [s.broadcast_hit_rate for _, s in rows]
    # Slower crowds are easier prey: strictly more scans in range.
    assert rates[0] > rates[-1]
