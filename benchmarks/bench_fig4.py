"""Fig. 4: the photo heat map.

Paper shape: geotagged-photo density picks out the crowded places —
malls and the shopping district glow, and the airport is the hot spot
of its otherwise empty island.
"""

from _shared import emit

from repro.experiments.figures import fig4


def test_fig4(benchmark):
    result = benchmark.pedantic(fig4, rounds=1, iterations=1)
    emit("fig4", result.render())

    contrast = {name: c for name, _, c in result.hottest_venues}
    assert contrast["International Airport"] > 20
    names = [name for name, _, _ in result.hottest_venues[:4]]
    assert any("Mall" in n for n in names)
