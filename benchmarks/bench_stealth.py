"""The detection arms race: detectability vs hit rate.

Deploys each attacker next to the two classic detectors and reports
broadcast hit rate together with time-to-detection.  The plain attackers
are caught within seconds; the stealth variant (BSSID-per-SSID, no blind
mimicry) evades both at a modest cost in hit rate — quantifying the
trade the paper's countermeasure discussion implies.
"""

from _shared import emit

from repro.analysis.metrics import summarize
from repro.attacks.stealth import StealthCityHunter
from repro.defenses.detector import CanaryProbeDetector, MultiSsidDetector
from repro.experiments.attackers import make_cityhunter, make_karma, make_mana
from repro.experiments.calibration import default_city
from repro.experiments.runner import shared_wigle
from repro.experiments.scenarios import ScenarioConfig, build_scenario
from repro.util.tables import render_table

DURATION = 1500.0
SEED = 4


def _deploy(factory):
    city = default_city()
    wigle = shared_wigle()
    config = ScenarioConfig(
        venue_name="University Canteen",
        mobility="static",
        people_per_min=25.0,
        duration=DURATION,
        seed=SEED,
    )
    build = build_scenario(city, wigle, config, factory)
    center = build.venue.region.center
    passive = MultiSsidDetector("02:de:te:ct:00:01", center, build.medium)
    active = CanaryProbeDetector("02:de:te:ct:00:02", center, build.medium)
    build.sim.add_entity(passive)
    build.sim.add_entity(active)
    build.sim.run(DURATION + 30.0)
    return build, passive, active


def _stealth_factory(sim, medium, venue):
    city = default_city()
    wigle = shared_wigle()
    return StealthCityHunter(
        "02:aa:00:00:00:01",
        venue.region.center,
        medium,
        wigle=wigle,
        heatmap=city.heatmap,
    )


def _flag_time(build, detector) -> str:
    macs = {build.attacker.mac}
    aliases = getattr(build.attacker, "_alias_by_ssid", {})
    macs.update(a.mac for a in aliases.values())
    times = [e.time for e in detector.detections if e.bssid in macs]
    return f"{min(times):.0f}s" if times else "never"


def test_stealth_tradeoff(benchmark):
    city = default_city()
    wigle = shared_wigle()

    def run():
        rows = []
        for label, factory in [
            ("KARMA", make_karma()),
            ("MANA", make_mana()),
            ("City-Hunter", make_cityhunter(wigle, city.heatmap)),
            ("City-Hunter stealth", _stealth_factory),
        ]:
            build, passive, active = _deploy(factory)
            hb = summarize(build.attacker.session).broadcast_hit_rate
            rows.append(
                [label, f"{100 * hb:.1f}%",
                 _flag_time(build, passive), _flag_time(build, active)]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "stealth",
        render_table(
            ["attacker", "h_b", "multi-SSID flags", "canary flags"],
            rows,
            title="Detectability vs hit rate (canteen, 25 min)",
        ),
    )
    plain = dict((r[0], r) for r in rows)["City-Hunter"]
    stealth = dict((r[0], r) for r in rows)["City-Hunter stealth"]
    assert plain[2] != "never" and plain[3] != "never"  # plain is caught
    assert stealth[2] == "never" and stealth[3] == "never"  # stealth is not
    # ... and the stealth cost is bounded.
    assert float(stealth[1].rstrip("%")) > 0.5 * float(plain[1].rstrip("%"))
