"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper, prints the
rendered rows (visible with ``pytest -s`` or on failure), and writes the
artefact to the run's artefact directory so the output survives pytest's
capture either way.  The directory comes from
:func:`repro.obs.artifacts.ensure_artifact_dir` — ``REPRO_ARTIFACT_DIR``
when set, ``benchmarks/out`` otherwise — so CI jobs that run several
benchmarks concurrently can give each one its own directory instead of
racing on a shared ``benchmarks/out/``.  Fig. 5 and Fig. 6 come from
the same 48 hourly runs, so those results are cached here and shared
between the two benchmark files.
"""

from __future__ import annotations

import functools
import pathlib


def out_dir() -> pathlib.Path:
    """The (created) artefact directory for this benchmark run."""
    from repro.obs.artifacts import ensure_artifact_dir

    return ensure_artifact_dir()


def emit(name: str, text: str) -> None:
    """Print an artefact and persist it under :func:`out_dir`."""
    (out_dir() / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@functools.lru_cache(maxsize=None)
def fig5_results(slot_subset: tuple = (), slot_duration: float = 3600.0):
    """The 12x4 hourly City-Hunter runs behind Fig. 5 *and* Fig. 6.

    All venue/slot runs fan out over the parallel executor in one batch
    (``REPRO_WORKERS`` controls the width); ``slot_subset`` and
    ``slot_duration`` cut the grid down for smoke runs.
    """
    from repro.experiments.figures import fig5_all

    slots = list(slot_subset) if slot_subset else None
    return fig5_all(slots=slots, slot_duration=slot_duration)
