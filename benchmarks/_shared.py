"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper, prints the
rendered rows (visible with ``pytest -s`` or on failure), and writes the
artefact under ``benchmarks/out/`` so the output survives pytest's
capture either way.  Fig. 5 and Fig. 6 come from the same 48 hourly
runs, so those results are cached here and shared between the two
benchmark files.
"""

from __future__ import annotations

import functools
import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print an artefact and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@functools.lru_cache(maxsize=None)
def fig5_results(slot_subset: tuple = (), slot_duration: float = 3600.0):
    """The 12x4 hourly City-Hunter runs behind Fig. 5 *and* Fig. 6.

    All venue/slot runs fan out over the parallel executor in one batch
    (``REPRO_WORKERS`` controls the width); ``slot_subset`` and
    ``slot_duration`` cut the grid down for smoke runs.
    """
    from repro.experiments.figures import fig5_all

    slots = list(slot_subset) if slot_subset else None
    return fig5_all(slots=slots, slot_duration=slot_duration)
