"""Table IV: top-5 SSIDs by AP count vs by photo-heat value.

Paper shape: count ranking is led by HKBN / 7-Eleven / Circle K / CSL /
CMCC-WEB; heat ranking promotes `Free Public WiFi` and the airport
network whose APs sit where the people are.
"""

from _shared import emit

from repro.experiments.tables import table4


def test_table4(benchmark):
    result = benchmark.pedantic(table4, rounds=1, iterations=1)
    emit("table4", result.render())
    count_col = [row[1] for row in result.rows]
    heat_col = [row[2] for row in result.rows]
    assert count_col[0] == "-Free HKBN Wi-Fi-"
    assert heat_col[0] == "Free Public WiFi"
    assert heat_col[1] == "#HKAirport Free WiFi"
    assert "#HKAirport Free WiFi" not in count_col
